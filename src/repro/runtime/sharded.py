"""Sharded batch-ingest runtime over the mergeable sketch protocol.

:class:`ShardedRunner` partitions one logical stream across ``K``
independent sketch shards — each with its own
:class:`~repro.state.tracker.StateTracker` — ingests through the
batched :meth:`~repro.state.algorithm.Sketch.process_many` fast path,
and reduces the shards with a binary merge tree.  Because the mergeable
families combine losslessly (linear sketches) or within their summable
error bounds (Misra-Gries/SpaceSaving), the reduced sketch answers
queries like a single instance that saw the whole stream, while the
merged tracker reports the distributed run's aggregate audit (the
elementwise sum of the shard reports).

Two partitioners are provided:

* ``"hash"`` — items are routed by a pairwise-independent hash of
  their identity, so every occurrence of an item lands on one shard.
  This is the partitioning that preserves per-item error bounds for
  the summary-based families (a Misra-Gries shard sees *all* of its
  items' occurrences) and is the production choice.
* ``"round-robin"`` — updates are dealt cyclically, which balances
  load perfectly but splits an item's occurrences across shards; fine
  for linear sketches, where merge is exact addition.

Per-shard write budgets: the paper's state-change accounting extends
naturally to shards — each shard's tracker measures its own
``sum_t X_t``, and :attr:`ShardedRunResult.shard_reports` exposes them
so a deployment can bound per-device wear, not just the total.
Budgets are *enforceable*, not just observable:
:meth:`ShardedRunner.from_registry` accepts a
:class:`~repro.state.budget.WriteBudget` plus a split policy —
``"even"`` divides a global limit across the shards (the shard limits
sum to the global one exactly), ``"replicate"`` gives every shard the
full limit (a per-device cap) — and each shard then runs on its own
:class:`~repro.state.tracker.BudgetBackend`.  The ``tracking``
argument picks the accounting backend for unbudgeted runs
(``"aggregate"`` — the fast-path default — or ``"trace"`` for
per-cell wear histograms).

Ingestion is columnar when the stream is: a
:class:`~repro.streams.chunked.ChunkedStream` (or bare ``int64``
ndarray) is routed chunk-wise — one vectorized partition hash per
chunk, boolean-mask splits, shard-side
:meth:`~repro.state.algorithm.Sketch.process_chunk` — with shard
assignment and results bit-identical to the per-item route.  An
optional ``chunk_size`` re-chunks the stream at ingest time.

Three executors decide *where* the per-shard ingest runs:

* ``"serial"`` — shards are ingested in-process as the stream is
  routed (the historical behaviour).
* ``"thread"`` — routed items are buffered per shard and ingested by
  a thread pool over the live shard objects at the first observation.
  No serialization round trip at all (non-serializable families can
  use it), and the numpy-dominated ``process_chunk`` kernels release
  the GIL for much of their work — on free-threaded builds the
  overlap is full.
* ``"process"`` — the default ``pipeline_depth > 0`` runs the
  zero-copy pipelined pool (:class:`~repro.runtime.parallel.
  PipelinedShardPool`): persistent workers are rebuilt once from each
  shard's empty snapshot, the router writes partitioned ``int64``
  chunks straight into per-shard shared-memory ring buffers *while*
  workers ingest earlier chunks, and at end-of-stream the ingested
  states stream back incrementally for restoration.
  ``pipeline_depth=0`` keeps the historical barrier pool: routed
  items are buffered per shard, shipped as one pickled payload each to
  a ``pool.map``, and restored after a full barrier.  Either way the
  results — merged payload, answers, and the full audit — are
  bit-identical to serial mode; only the wall-clock changes.

A worker failure aborts the run with its shard context
(:class:`~repro.runtime.parallel.ShardIngestError`; ``policy="raise"``
budget aborts keep their ``WriteBudgetExceededError`` type with the
context chained), and the runner then refuses to merge or observe the
partial results.
"""

from __future__ import annotations

import copy
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

import numpy as np

from repro import registry
from repro.hashing.prime_field import KWiseHash
from repro.runtime.parallel import (
    DEFAULT_PIPELINE_DEPTH,
    PipelinedShardPool,
    ShardIngestError,
    reraise_shard_error,
    resolve_start_method,
    resolve_workers,
    run_shard_tasks,
    wrap_shard_error,
)
from repro.state.algorithm import NotMergeableError, Sketch
from repro.state.budget import BudgetReport, WriteBudget
from repro.state.report import StateChangeReport
from repro.state.tracker import BudgetBackend, make_tracker
from repro.streams.chunked import (
    DEFAULT_CHUNK_SIZE,
    ChunkedStream,
    as_chunk,
)

#: Builds the shard with the given index; shards must be mutually
#: merge-compatible (same type, same hash seeds, separate trackers).
ShardFactory = Callable[[int], Sketch]

_PARTITIONS = ("hash", "round-robin")
_EXECUTORS = ("serial", "thread", "process")
_SNAPSHOT_MODES = ("incremental", "full")

#: One leaf of a snapshot cut: the shard's ingest-epoch key plus an
#: immutable-by-convention private copy of the shard at that epoch.
SnapshotCut = list[tuple[tuple, Sketch]]


def _load_skew(shard_items: tuple[int, ...] | list[int]) -> float:
    """Max-over-mean shard load; 1.0 for an empty run (no 0/0)."""
    total = sum(shard_items)
    if total == 0:
        return 1.0
    return max(shard_items) * len(shard_items) / total


@dataclass(frozen=True)
class ShardedRunResult:
    """Outcome of one sharded run after the merge reduce.

    Attributes
    ----------
    merged:
        The reduced sketch; query it like a single-instance run.
    merged_report:
        Its audit — the elementwise sum of ``shard_reports``.
    shard_reports:
        Per-shard audits (per-shard write budgets live here).
    shard_items:
        Updates routed to each shard.
    budget_reports:
        Per-shard :class:`~repro.state.budget.BudgetReport` values when
        the shards ran on budget backends; ``None`` entries otherwise.
    """

    num_shards: int
    partition: str
    merged: Sketch
    merged_report: StateChangeReport
    shard_reports: tuple[StateChangeReport, ...]
    shard_items: tuple[int, ...]
    budget_reports: tuple[BudgetReport | None, ...] = ()

    @property
    def skew(self) -> float:
        """Load imbalance: max over shards of ``items / mean items``.

        1.0 means perfectly balanced.  An empty run has no imbalance to
        report, so the empty stream also yields 1.0 (rather than a
        0/0 division); a single-item stream yields ``num_shards`` —
        every routed item sat on one shard.
        """
        return _load_skew(self.shard_items)

    def summary(self) -> str:
        """One-line human-readable run summary."""
        return (
            f"shards={self.num_shards} ({self.partition}) "
            f"skew={self.skew:.2f} "
            f"state_changes={self.merged_report.state_changes} "
            f"peak_words={self.merged_report.peak_words}"
        )


class ShardedRunner:
    """Partition a stream over ``K`` sketch shards and merge-reduce.

    Parameters
    ----------
    factory:
        ``factory(shard_index) -> Sketch``.  All shards must be built
        with the *same* hash seeds (merge compatibility) but must not
        share a tracker.  Use :meth:`from_registry` for the common
        case.
    num_shards:
        Number of shards ``K >= 1``.
    partition:
        ``"hash"`` (default) or ``"round-robin"``; see module docs.
    seed:
        Seeds the partitioning hash (independent of the sketch seeds).
    batch_size:
        Items buffered per shard before a ``process_many`` flush
        (serial executor only; the process executor ships each shard's
        full buffer in one task).
    executor:
        ``"serial"`` (default) ingests in-process; ``"thread"``
        buffers routed work and ingests the live shards on a thread
        pool at the first observation (reports, merge, or
        :meth:`run`); ``"process"`` runs the pipelined shared-memory
        pool (``pipeline_depth > 0``, workers ingest concurrently with
        routing) or the historical barrier pool (``pipeline_depth=0``).
        The process executor requires a serializable sketch; every
        executor is bit-identical to serial mode.
    max_workers:
        Pool size cap (``None``: one worker per shard, capped by the
        CPUs the process may run on).
    pipeline_depth:
        Ring-buffer slots per shard for the pipelined process
        executor — how far routing may run ahead of ingest before
        back-pressure blocks.  ``0`` selects the barrier pool.
    start_method:
        Explicit ``multiprocessing`` start-method override
        (``"fork"``/``"forkserver"``/``"spawn"``); ``None`` applies
        the thread-safety policy of
        :func:`~repro.runtime.parallel.resolve_start_method`.
    """

    def __init__(
        self,
        factory: ShardFactory,
        num_shards: int,
        partition: str = "hash",
        seed: int = 0,
        batch_size: int = 1024,
        executor: str = "serial",
        max_workers: int | None = None,
        chunk_size: int | None = None,
        pipeline_depth: int = DEFAULT_PIPELINE_DEPTH,
        start_method: str | None = None,
        snapshot_mode: str = "incremental",
    ) -> None:
        if num_shards < 1:
            raise ValueError(f"need at least one shard: {num_shards}")
        if partition not in _PARTITIONS:
            raise ValueError(
                f"unknown partition {partition!r}; choose from {_PARTITIONS}"
            )
        if executor not in _EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; choose from {_EXECUTORS}"
            )
        if snapshot_mode not in _SNAPSHOT_MODES:
            raise ValueError(
                f"unknown snapshot_mode {snapshot_mode!r}; choose from "
                f"{_SNAPSHOT_MODES}"
            )
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1: {batch_size}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1: {chunk_size}")
        if pipeline_depth < 0:
            raise ValueError(
                f"pipeline_depth must be >= 0: {pipeline_depth}"
            )
        if start_method is not None:
            resolve_start_method(start_method)  # validate eagerly
        self.num_shards = num_shards
        self.partition = partition
        self.executor = executor
        self.max_workers = max_workers
        self.batch_size = batch_size
        self.chunk_size = chunk_size
        self.pipeline_depth = pipeline_depth
        self.start_method = start_method
        self.snapshot_mode = snapshot_mode
        self._shards: list[Sketch] = [factory(i) for i in range(num_shards)]
        trackers = {id(shard.tracker) for shard in self._shards}
        if len(trackers) != num_shards:
            raise ValueError(
                "shards must not share StateTrackers; give each shard "
                "its own tracker so per-shard audits are well defined"
            )
        if num_shards > 1 and not self._shards[0].mergeable:
            raise NotMergeableError(
                f"{type(self._shards[0]).__name__} does not support "
                f"merging; it cannot be sharded"
            )
        # Route by item identity so all occurrences co-locate.
        self._route = KWiseHash(2, seed=seed + 0x5A5A)
        self._cursor = 0  # round-robin position
        self._buffers: list[list[int]] = [[] for _ in range(num_shards)]
        # Routed ndarray chunks awaiting the pool (process executor).
        self._chunk_buffers: list[list[np.ndarray]] = [
            [] for _ in range(num_shards)
        ]
        self._shard_items = [0] * num_shards
        self._merged: Sketch | None = None
        self._premerge_reports: tuple[StateChangeReport, ...] = ()
        self._premerge_budgets: tuple[BudgetReport | None, ...] = ()
        self._dispatched = False  # pool/thread executor ran its work
        self._pipeline: PipelinedShardPool | None = None
        self._failed: BaseException | None = None
        # Incremental snapshot plane: per-leaf clones and memoized
        # merge-tree nodes, both keyed by the shards' ingest epochs.
        # The merge lock serializes off-lock reductions (the caches are
        # shared); entries are (key, sketch) pairs, so a stale or
        # out-of-order build self-describes and rebuilds instead of
        # serving the wrong epoch.
        self._merge_lock = threading.Lock()
        self._leaf_cache: list[tuple[tuple, Sketch] | None] = (
            [None] * num_shards
        )
        self._node_cache: dict[tuple[int, int], tuple[tuple, Sketch]] = {}
        self._snap_stats = {
            "cuts_taken": 0,
            "leaves_cloned": 0,
            "leaves_reused": 0,
            "nodes_built": 0,
            "nodes_reused": 0,
            "full_rebuilds": 0,
        }

    @classmethod
    def from_registry(
        cls,
        name: str,
        num_shards: int,
        n: int = 4096,
        m: int = 65536,
        epsilon: float = 0.5,
        seed: int = 0,
        partition: str = "hash",
        batch_size: int = 1024,
        executor: str = "serial",
        max_workers: int | None = None,
        tracking: str = "aggregate",
        budget: WriteBudget | int | None = None,
        budget_split: str = "even",
        chunk_size: int | None = None,
        coin_protocol: str | None = None,
        pipeline_depth: int = DEFAULT_PIPELINE_DEPTH,
        start_method: str | None = None,
        snapshot_mode: str = "incremental",
    ) -> "ShardedRunner":
        """Runner whose shards come from :mod:`repro.registry`.

        Every shard is built with the *same* ``seed`` so the shards
        share hash functions and merge losslessly.  ``tracking``
        selects the accounting backend of every shard (the runtime
        defaults to the aggregate fast path); passing a ``budget``
        switches the shards to budget backends, with the global limit
        divided per ``budget_split`` (``"even"`` — shard limits sum to
        the global limit — or ``"replicate"`` — every shard gets the
        full limit).  ``coin_protocol`` forces the randomized
        families' coin protocol (see :func:`repro.registry.create`);
        shards share the sketch ``seed``, so all shards run the same
        protocol.
        """
        budgets: tuple[WriteBudget | None, ...]
        if budget is not None:
            if not isinstance(budget, WriteBudget):
                budget = WriteBudget(budget)
            budgets = budget.split(num_shards, how=budget_split)
        else:
            budgets = (None,) * num_shards
        return cls(
            lambda index: registry.create(
                name,
                n=n,
                m=m,
                epsilon=epsilon,
                seed=seed,
                tracker=make_tracker(tracking, budget=budgets[index]),
                coin_protocol=coin_protocol,
            ),
            num_shards=num_shards,
            partition=partition,
            seed=seed,
            batch_size=batch_size,
            executor=executor,
            max_workers=max_workers,
            chunk_size=chunk_size,
            pipeline_depth=pipeline_depth,
            start_method=start_method,
            snapshot_mode=snapshot_mode,
        )

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def shard_of(self, item: int) -> int:
        """Shard index the next occurrence of ``item`` is routed to.

        Pure query: under round-robin it peeks at the current cursor
        without advancing it, so inspecting routing never perturbs
        where :meth:`ingest` actually places items.
        """
        if self.partition == "hash":
            return self._route.bucket(item, self.num_shards)
        return self._cursor

    def _next_shard(self, item: int) -> int:
        """Routing used by :meth:`ingest`; advances the round-robin."""
        shard = self.shard_of(item)
        if self.partition == "round-robin":
            self._cursor = (shard + 1) % self.num_shards
        return shard

    @property
    def _pipelined(self) -> bool:
        """Whether this runner streams work into the pipelined pool."""
        return self.executor == "process" and self.pipeline_depth > 0

    def ingest(self, stream: Iterable[int]) -> int:
        """Route ``stream`` to the shards; returns items consumed.

        Columnar sources — a :class:`~repro.streams.chunked.
        ChunkedStream` or an ``np.ndarray`` — take the chunked fast
        path: one vectorized partition hash over each chunk, a
        boolean-mask split per shard, and shard-side ingest through
        :meth:`~repro.state.algorithm.Sketch.process_chunk`
        (bit-identical to the scalar route).  Other iterables keep the
        historical per-item path, batched at ``batch_size`` items.

        Where the routed work goes depends on the executor: serial
        ingests as it routes; the pipelined process executor writes
        each routed part into the shard's shared-memory ring (workers
        ingest concurrently — the overlap is the point); the thread
        and barrier-process executors only buffer, and the buffered
        work runs at the first observation (reports, merge, or
        :meth:`run`).
        """
        self._check_ingestable()
        chunks = getattr(stream, "chunks", None)
        if chunks is not None:
            return self._ingest_chunks(chunks(self.chunk_size))
        if isinstance(stream, np.ndarray):
            return self._ingest_chunks(
                ChunkedStream(stream).chunks(self.chunk_size)
            )
        buffers = self._buffers
        count = 0
        if self.executor in ("thread", "process") and not self._pipelined:
            shard_items = self._shard_items
            for item in stream:
                shard = self._next_shard(item)
                buffers[shard].append(item)
                shard_items[shard] += 1
                count += 1
            return count
        threshold = self.batch_size
        for item in stream:
            shard = self._next_shard(item)
            buffer = buffers[shard]
            buffer.append(item)
            count += 1
            if len(buffer) >= threshold:
                self._flush(shard)
        for shard in range(self.num_shards):
            self._flush(shard)
        return count

    def _check_ingestable(self) -> None:
        self._check_not_failed()
        if self._merged is not None:
            raise RuntimeError(
                "runner is already merged; create a new ShardedRunner"
            )
        if self.executor != "serial" and self._dispatched:
            raise RuntimeError(
                f"{self.executor}-executor runner has already executed; "
                f"create a new ShardedRunner"
            )

    def _check_not_failed(self) -> None:
        if self._failed is not None:
            raise RuntimeError(
                "a shard ingest failed; partial results cannot be "
                "merged, observed, or extended — create a new "
                "ShardedRunner"
            ) from self._failed

    def _fail(self, error: BaseException) -> None:
        """Latch a worker failure: the run's partial results are dead."""
        self._failed = error
        self._dispatched = True
        # The memoized snapshot plane describes a run that no longer
        # exists; a latched runner must not serve (or hold) stale roots.
        self._clear_snapshot_caches()
        if self._pipeline is not None:
            self._pipeline.close()
            self._pipeline = None

    def _ingest_chunks(self, chunks: Iterator[np.ndarray]) -> int:
        """Columnar routing: split each chunk across the shards with
        one vectorized hash (or a cursor arithmetic for round-robin)
        and deliver per-shard sub-chunks in stream order."""
        num_shards = self.num_shards
        count = 0
        for chunk in chunks:
            chunk = as_chunk(chunk)
            if not len(chunk):
                continue
            count += len(chunk)
            if num_shards == 1:
                self._deliver_chunk(0, chunk)
                continue
            if self.partition == "hash":
                routed = self._route.bucket_many(chunk, num_shards)
            else:
                routed = (
                    self._cursor + np.arange(len(chunk), dtype=np.int64)
                ) % num_shards
                self._cursor = int(
                    (self._cursor + len(chunk)) % num_shards
                )
            for shard in range(num_shards):
                part = chunk[routed == shard]
                if len(part):
                    self._deliver_chunk(shard, part)
        return count

    def _deliver_chunk(self, shard: int, part: np.ndarray) -> None:
        if self._pipelined:
            # Any scalar-buffered items precede this chunk in stream
            # order; submit them first, then stream the chunk into the
            # shard's shared-memory ring while its worker ingests.
            self._flush(shard)
            self._shard_items[shard] += len(part)
            self._pool_submit(shard, part)
        elif self.executor in ("thread", "process"):
            # Deferred executors: freeze any scalar-buffered items (they
            # precede this chunk in stream order) into the chunk queue.
            pending = self._buffers[shard]
            if pending:
                self._chunk_buffers[shard].append(
                    np.asarray(pending, dtype=np.int64)
                )
                pending.clear()
            self._chunk_buffers[shard].append(part)
            self._shard_items[shard] += len(part)
        else:
            self._shard_items[shard] += self._shards[shard].process_chunk(
                part
            )

    def _flush(self, shard: int) -> None:
        buffer = self._buffers[shard]
        if not buffer:
            return
        if self._pipelined and not self._dispatched:
            part = np.asarray(buffer, dtype=np.int64)
            buffer.clear()
            self._shard_items[shard] += len(part)
            self._pool_submit(shard, part)
            return
        self._shard_items[shard] += self._shards[shard].process_many(
            buffer
        )
        buffer.clear()

    def _pool_submit(self, shard: int, part: np.ndarray) -> None:
        """Hand one routed part to the pipelined pool (started lazily).

        The pool launches at the first routed part — workers rebuild
        from each shard's *empty* snapshot and then ingest everything,
        exactly like the barrier path, but concurrently with routing.
        Any failure (a worker fault surfacing through back-pressure, a
        non-serializable shard at pool start) latches the runner as
        failed before propagating.
        """
        try:
            if self._pipeline is None:
                self._pipeline = PipelinedShardPool(
                    [(i, s.to_state()) for i, s in enumerate(self._shards)],
                    slot_items=self.chunk_size or DEFAULT_CHUNK_SIZE,
                    depth=self.pipeline_depth,
                    max_workers=self.max_workers,
                    start_method=self.start_method,
                )
            self._pipeline.submit(shard, part)
        except BaseException as error:
            self._fail(error)
            raise

    def _shard_payload(self, index: int):
        """A shard's buffered work in stream order, or None when empty.

        Chunk-routed shards ship one concatenated ``int64`` ndarray
        (the pickle of an array, not a list of Python ints) that the
        executor ingests via ``process_chunk``; purely scalar-routed
        shards keep the historical ``list[int]`` payload and the
        ``process_many`` path.
        """
        chunked = self._chunk_buffers[index]
        scalar = self._buffers[index]
        if chunked:
            segments = list(chunked)
            if scalar:  # trailing scalar items arrived after the chunks
                segments.append(np.asarray(scalar, dtype=np.int64))
            return (
                segments[0]
                if len(segments) == 1
                else np.concatenate(segments)
            )
        return list(scalar) if scalar else None

    def _execute(self) -> None:
        """Run any deferred/pipelined shard work (at most once).

        Pipelined process runs: signal end-of-stream and restore the
        ingested states incrementally as workers report (a fast
        worker's ``from_state`` restoration overlaps a slow worker's
        tail).  Barrier process runs: each non-empty shard becomes one
        ``(index, empty_state, payload)`` task for ``pool.map``.
        Thread runs: a thread pool ingests the buffered payloads into
        the *live* shard objects — no serialization round trip at all.
        Shards that received no items keep their local (empty)
        instances in every mode, matching serial bit for bit.  Any
        failure latches the runner: partial results are never merged.
        """
        if self.executor == "serial" or self._dispatched:
            return
        self._dispatched = True
        try:
            if self.executor == "thread":
                self._execute_threads()
            elif self._pipelined:
                self._drain_pipeline()
            else:
                self._execute_barrier()
        except BaseException as error:
            self._fail(error)
            raise
        self._buffers = [[] for _ in range(self.num_shards)]
        self._chunk_buffers = [[] for _ in range(self.num_shards)]

    def _execute_threads(self) -> None:
        """Ingest buffered payloads on a thread pool over live shards.

        The numpy-dominated ``process_chunk`` kernels release the GIL
        for much of their work, so chunk-routed shards genuinely
        overlap; scalar payloads serialize on the GIL but still get
        the deferred-execution semantics.  Worker errors carry shard
        context exactly like the process executors.
        """
        payloads = [
            (index, payload)
            for index in range(self.num_shards)
            if (payload := self._shard_payload(index)) is not None
        ]
        if not payloads:
            return

        def ingest_live(index: int, payload) -> None:
            shard = self._shards[index]
            try:
                if isinstance(payload, np.ndarray):
                    shard.process_chunk(payload)
                else:
                    shard.process_many(payload)
            except Exception as error:
                raise wrap_shard_error(index, shard, error) from error

        workers = resolve_workers(len(payloads), self.max_workers)
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(ingest_live, index, payload)
                for index, payload in payloads
            ]
            try:
                for future in futures:
                    future.result()
            except ShardIngestError as error:
                reraise_shard_error(error)

    def _drain_pipeline(self) -> None:
        """Finish the pipelined pool, restoring states as they arrive."""
        pool = self._pipeline
        if pool is None:  # nothing was ever routed
            return
        self._pipeline = None
        try:
            for index, state in pool.finish():
                sketch_cls = registry.sketch_class(state["algorithm"])
                self._shards[index] = sketch_cls.from_state(state)
        finally:
            pool.close()

    def _execute_barrier(self) -> None:
        """Historical route-then-run pool (``pipeline_depth=0``)."""
        tasks = []
        for index in range(self.num_shards):
            payload = self._shard_payload(index)
            if payload is not None:
                tasks.append(
                    (index, self._shards[index].to_state(), payload)
                )
        for index, state in run_shard_tasks(
            tasks, self.max_workers, start_method=self.start_method
        ):
            sketch_cls = registry.sketch_class(state["algorithm"])
            self._shards[index] = sketch_cls.from_state(state)

    # ------------------------------------------------------------------
    # Reduce
    # ------------------------------------------------------------------
    @staticmethod
    def _copy_shard(shard: Sketch) -> Sketch:
        """An exact private copy of a shard (payload, audit, RNG).

        Serializable families round-trip through
        ``to_state``/``from_state`` — the exactness contract the
        checkpoint and process-executor tests already pin down, which
        also drops any attached write listeners (a snapshot must not
        replay wear callbacks).  Families without the state hooks are
        deep-copied instead; both routes leave the original untouched.
        """
        if type(shard)._config_state is not Sketch._config_state:
            return type(shard).from_state(shard.to_state())
        return copy.deepcopy(shard)

    def _clear_snapshot_caches(self) -> None:
        """Drop every memoized leaf clone and merge-tree node."""
        self._leaf_cache = [None] * self.num_shards
        self._node_cache = {}

    def _leaf_key(self, index: int, shard: Sketch) -> tuple:
        """The shard's *ingest epoch*: a tuple of observable counters
        that changes whenever the shard absorbs an update.

        Derived rather than explicitly bumped, so it also catches
        mutation outside the runner's delivery paths (e.g. callers
        driving ``runner.shards[i].process(...)`` directly): any
        processed update advances the stream clock and the items
        counter, and the remaining audit counters distinguish runs
        that happen to tie on those.
        """
        tracker = shard.tracker
        return (
            self._shard_items[index],
            shard._items_processed,
            tracker._timestep,
            tracker._state_changes,
            tracker._total_writes,
            tracker._write_attempts,
        )

    def snapshot_cut(self) -> SnapshotCut:
        """Capture a consistent leaf vector for a (possibly off-lock)
        merge: one ``(epoch_key, private_copy)`` pair per shard.

        Intended to be called where the shards are quiescent (the
        serving engine calls it under its ingest lock): the expensive
        part — copying shards — is paid only for the leaves whose
        epoch advanced since the last cut; clean leaves reuse the
        cached copy by reference.  The returned cut is self-contained
        (every entry is an immutable-by-convention private copy), so
        :meth:`merged_from_cut` can reduce it later without touching
        live shard state.

        Under the thread and process executors the first cut triggers
        the pending dispatch, after which those one-shot runners
        cannot ingest again — same semantics as
        :meth:`merged_snapshot` always had.
        """
        self._check_not_failed()
        if self._merged is not None:
            # The destructive reduce folded every shard tracker into
            # the root; copying the shards now would double-count.
            raise RuntimeError(
                "runner is already merged; snapshots must be taken "
                "before merge()"
            )
        self._execute()
        for shard in range(self.num_shards):
            self._flush(shard)
        stats = self._snap_stats
        stats["cuts_taken"] += 1
        if self.snapshot_mode == "full":
            # Reference path: fresh serialization round trips, no
            # caches — what the equivalence sweep compares against.
            return [
                (self._leaf_key(i, shard), self._copy_shard(shard))
                for i, shard in enumerate(self._shards)
            ]
        cut: SnapshotCut = []
        for i, shard in enumerate(self._shards):
            key = self._leaf_key(i, shard)
            cached = self._leaf_cache[i]
            if cached is None or cached[0] != key:
                cached = (key, shard.clone())
                self._leaf_cache[i] = cached
                stats["leaves_cloned"] += 1
            else:
                stats["leaves_reused"] += 1
            cut.append(cached)
        return cut

    def merged_from_cut(self, cut: SnapshotCut) -> Sketch:
        """Reduce a :meth:`snapshot_cut` into a caller-owned merged
        sketch; safe to run outside the caller's ingest lock.

        Incremental mode runs the memoized reduction: internal nodes
        of the merge tree are cached keyed by the concatenation of
        their leaves' epoch keys, so a cut where only ``k`` of ``S``
        shards advanced re-merges only those leaves' root paths —
        ``O(k log S)`` merges instead of ``S - 1``.  Cached nodes are
        never mutated (a rebuild clones its left child before merging,
        and :meth:`~repro.state.algorithm.Sketch.merge` only reads its
        right operand), and an internal lock serializes concurrent
        reductions over the shared cache.  The returned root is always
        a private clone, so repeated snapshots never alias.

        Full mode reduces the cut's fresh copies in place — the
        historical code path, byte for byte.
        """
        if self.snapshot_mode == "full":
            self._snap_stats["full_rebuilds"] += 1
            level = [sketch for _, sketch in cut]
            while len(level) > 1:
                merged_level = []
                for i in range(0, len(level) - 1, 2):
                    merged_level.append(level[i].merge(level[i + 1]))
                if len(level) % 2:
                    merged_level.append(level[-1])
                level = merged_level
            return level[0]
        with self._merge_lock:
            stats = self._snap_stats
            entries = [((key,), sketch) for key, sketch in cut]
            height = 1
            while len(entries) > 1:
                merged_level = []
                for j in range(0, len(entries) - 1, 2):
                    left_keys, left = entries[j]
                    right_keys, right = entries[j + 1]
                    keys = left_keys + right_keys
                    slot = (height, j // 2)
                    cached = self._node_cache.get(slot)
                    if cached is not None and cached[0] == keys:
                        stats["nodes_reused"] += 1
                        merged_level.append(cached)
                        continue
                    node = left.clone().merge(right)
                    entry = (keys, node)
                    self._node_cache[slot] = entry
                    stats["nodes_built"] += 1
                    merged_level.append(entry)
                if len(entries) % 2:
                    # Promoted odd node: carried up unmerged, exactly
                    # like the historical tree shape (MG/SpaceSaving
                    # merges are not associative, so the shape is part
                    # of the bit-identity contract).
                    merged_level.append(entries[-1])
                entries = merged_level
                height += 1
            return entries[0][1].clone()

    def snapshot_stats(self) -> dict[str, int]:
        """Counters of the incremental snapshot plane.

        ``cuts_taken`` snapshots so far; per cut, how many leaves were
        freshly cloned vs reused from cache, how many merge-tree nodes
        were rebuilt vs served memoized, and how many full (reference
        mode) rebuilds ran.
        """
        return dict(self._snap_stats)

    def merged_snapshot(self) -> Sketch:
        """Reduce *copies* of the shards; the shards stay ingestable.

        Unlike :meth:`merge`, which absorbs the shards destructively
        and ends the runner's ingest phase, this builds the identical
        merge-tree over exact per-shard copies and returns the root —
        so callers can interleave snapshots with further
        :meth:`ingest` calls and take as many snapshots as they like.
        The returned sketch (payload, answers, and combined audit via
        its tracker) is bit-identical to what :meth:`merge` would have
        returned at this point in the stream, and — because routing
        and per-shard ingest are deterministic — to a fresh batch run
        over the same stream prefix.

        The default ``snapshot_mode="incremental"`` serves the reduce
        through the memoized merge tree (see :meth:`merged_from_cut`):
        a snapshot where only ``k`` of ``S`` shards ingested since the
        last one costs ``k`` leaf clones and ``O(k log S)`` merges.
        ``snapshot_mode="full"`` keeps the historical rebuild-
        everything path — the reference the equivalence tests sweep
        the incremental plane against.

        This is the primitive the live serving engine
        (:class:`repro.serve.LiveEngine`) answers queries through.

        Under the thread and process executors the first snapshot
        triggers the pending dispatch (or finishes the pipelined
        pool), after which the runner cannot ingest again (those
        executors are one-shot); snapshot-while-ingesting is a
        serial-executor workflow.
        """
        return self.merged_from_cut(self.snapshot_cut())

    def merge(self) -> Sketch:
        """Reduce the shards with a binary merge tree; returns the root.

        After the reduce the shards are consumed (their state has been
        absorbed) and further :meth:`ingest` calls are rejected.  The
        tree shape halves the number of summaries per round, matching
        how a distributed reduce would combine partial sketches.
        """
        self._check_not_failed()
        if self._merged is None:
            self._execute()
            # The destructive reduce ends the snapshot plane's life:
            # drop the memoized clones so a merged runner cannot serve
            # (or pin the memory of) a stale root.
            self._clear_snapshot_caches()
            # Snapshot the per-shard audits first: the reduce folds
            # every other tracker into the surviving shard's, after
            # which live reports would double-count.
            self._premerge_reports = tuple(
                shard.report() for shard in self._shards
            )
            self._premerge_budgets = tuple(
                self._shard_budget(shard) for shard in self._shards
            )
            level = list(self._shards)
            while len(level) > 1:
                merged_level = []
                for i in range(0, len(level) - 1, 2):
                    merged_level.append(level[i].merge(level[i + 1]))
                if len(level) % 2:
                    merged_level.append(level[-1])
                level = merged_level
            self._merged = level[0]
        return self._merged

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    @property
    def shards(self) -> tuple[Sketch, ...]:
        """The live shards (pre-merge); triggers any pending pool work."""
        self._check_not_failed()
        self._execute()
        return tuple(self._shards)

    @property
    def shard_items(self) -> tuple[int, ...]:
        """Updates ingested per shard so far."""
        return tuple(self._shard_items)

    def shard_reports(self) -> tuple[StateChangeReport, ...]:
        """Per-shard state-change audits (per-shard write budgets).

        After :meth:`merge` this returns the audits snapshotted just
        before the reduce — the live trackers have been folded into
        the merge root by then and would double-count.
        """
        self._check_not_failed()
        if self._merged is not None:
            return self._premerge_reports
        self._execute()
        return tuple(shard.report() for shard in self._shards)

    @staticmethod
    def _shard_budget(shard: Sketch) -> BudgetReport | None:
        tracker = shard.tracker
        if isinstance(tracker, BudgetBackend):
            return tracker.budget_report()
        return None

    def budget_reports(self) -> tuple[BudgetReport | None, ...]:
        """Per-shard budget outcomes (``None`` for unbudgeted shards).

        Like :meth:`shard_reports`, answers come from the pre-merge
        snapshot once the shards have been reduced.
        """
        self._check_not_failed()
        if self._merged is not None:
            return self._premerge_budgets
        self._execute()
        return tuple(self._shard_budget(shard) for shard in self._shards)

    def skew(self) -> float:
        """Max-over-mean shard load (1.0 = perfectly balanced)."""
        return _load_skew(self._shard_items)

    def run(self, stream: Iterable[int]) -> ShardedRunResult:
        """Ingest ``stream``, reduce, and package the full result."""
        self.ingest(stream)
        shard_reports = self.shard_reports()
        shard_items = self.shard_items
        merged = self.merge()
        return ShardedRunResult(
            num_shards=self.num_shards,
            partition=self.partition,
            merged=merged,
            merged_report=merged.report(),
            shard_reports=shard_reports,
            shard_items=shard_items,
            budget_reports=self.budget_reports(),
        )
