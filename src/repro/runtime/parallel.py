"""Parallel execution of shard ingest work: pipelined shared-memory
pool, barrier process pool, and the shared worker-sizing policy.

Three pieces live here:

* :class:`PipelinedShardPool` — the zero-copy pipelined executor.  A
  persistent set of worker processes is fed through per-shard
  ``multiprocessing.shared_memory`` ring buffers: the router (the
  parent, inside :meth:`~repro.runtime.sharded.ShardedRunner.ingest`)
  writes partitioned ``int64`` chunks straight into a shard's shared
  segment while the owning worker ingests earlier chunks concurrently
  — pipeline overlap instead of the historical route-then-run barrier.
  Only tiny slot descriptors cross a queue; the chunk payloads are
  never pickled.  Workers ingest each slot *in place* (a numpy view of
  the shared segment — no copy on either side) and release the slot's
  back-pressure semaphore only after the chunk is absorbed, so a slot
  is never overwritten while in use.  When the router signals the end
  of the stream, each worker snapshots its shards and streams the
  ``to_state`` payloads back incrementally, letting the parent restore
  (the expensive half of the merge-reduce) while slower workers are
  still ingesting.

* :func:`run_shard_tasks` — the historical barrier path (one pickled
  payload per shard, ``pool.map``, results after a full barrier),
  kept for ``pipeline_depth=0`` and as the bench baseline the overlap
  is measured against.

* The sizing/start-method policy shared by both:
  :func:`available_cpus` respects cgroup quotas and CPU affinity
  (``os.process_cpu_count`` where available, ``sched_getaffinity``
  otherwise — plain ``os.cpu_count`` oversubscribes 1-CPU containers),
  and :func:`resolve_start_method` refuses to ``fork`` a
  multi-threaded parent (a live ``LiveServer`` handler thread plus a
  forked pool is a latent deadlock: the child inherits locks whose
  owners do not exist in it), falling back to ``forkserver``/``spawn``.
  Results are bit-identical across start methods — only safety and
  start-up cost differ.

Worker failures carry their context: any exception inside a worker is
wrapped in :class:`ShardIngestError` (shard index, items ingested when
it struck, the original exception, and its formatted traceback), which
pickles cleanly across the pool boundary.  The parent re-raises the
original error *chained* to the shard context — a
``policy="raise"`` write-budget abort still surfaces as
:class:`~repro.state.budget.WriteBudgetExceededError` (the PR-4
contract; the CLI and callers catch that type) with the
``ShardIngestError`` as its ``__cause__``, while unexpected faults
surface as the ``ShardIngestError`` itself with the original chained.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import threading
import traceback
from multiprocessing import shared_memory
from queue import Empty
from typing import Any, Iterator, Sequence, Union

import numpy as np

from repro import registry
from repro.state.budget import WriteBudgetExceededError
from repro.streams.chunked import DEFAULT_CHUNK_SIZE

#: One shard's work order: ``(shard_index, empty_state, items)``.
#: Chunk-routed work ships the items as one ``int64`` ndarray (pickled
#: as a contiguous buffer, not a list of Python ints); scalar-routed
#: work keeps the historical ``list[int]``.
ShardTask = tuple[int, dict[str, Any], Union["np.ndarray", list[int]]]
#: One shard's result: ``(shard_index, ingested_state)``.
ShardResult = tuple[int, dict[str, Any]]

#: Start methods the override accepts, safest-first.
START_METHODS = ("fork", "forkserver", "spawn")

#: Default ring-buffer depth: slots per shard the router may run ahead
#: of the worker.  4 keeps the worker fed across routing hiccups while
#: bounding the shared segment at ``4 * slot_items * 8`` bytes/shard.
DEFAULT_PIPELINE_DEPTH = 4


class ShardIngestError(RuntimeError):
    """A shard's worker failed ``offset`` items into its stream.

    Attributes
    ----------
    shard_index:
        Which shard's ingest raised.
    offset:
        Items the shard had successfully ingested when the error
        struck (the failure lies inside the next chunk).
    cause:
        The original exception (unpickled in the parent).  Falls back
        to a ``RuntimeError`` carrying ``repr(original)`` when the
        original does not pickle.
    worker_traceback:
        The worker-side formatted traceback, preserved across the
        process boundary where the live traceback object cannot be.
    """

    def __init__(
        self,
        shard_index: int,
        offset: int,
        cause: BaseException,
        worker_traceback: str | None = None,
    ) -> None:
        detail = f": {cause}" if cause is not None else ""
        location = (
            f"\n--- worker traceback ---\n{worker_traceback}"
            if worker_traceback
            else ""
        )
        super().__init__(
            f"shard {shard_index} failed after ingesting {offset} "
            f"items{detail}{location}"
        )
        self.shard_index = shard_index
        self.offset = offset
        self.cause = cause
        self.worker_traceback = worker_traceback

    def __reduce__(self):
        # Pickle as constructor arguments (the same treatment
        # WriteBudgetExceededError got): an error that cannot cross
        # the pool boundary hangs the pool's result handler.
        return (
            type(self),
            (self.shard_index, self.offset, self.cause,
             self.worker_traceback),
        )


def wrap_shard_error(
    shard_index: int, shard, error: BaseException
) -> ShardIngestError:
    """Wrap a worker-side exception with its shard context.

    Captures the shard's ingest offset and the formatted traceback
    *now*, while both still exist; ensures the wrapped cause survives
    pickling (an unpicklable cause is replaced by a ``RuntimeError``
    carrying its repr, so the parent always gets the context).
    """
    offset = int(getattr(shard, "items_processed", 0) or 0)
    tb = traceback.format_exc()
    try:
        pickle.loads(pickle.dumps(error))
    except Exception:
        error = RuntimeError(repr(error))
    return ShardIngestError(shard_index, offset, error, tb)


def reraise_shard_error(error: ShardIngestError) -> None:
    """Re-raise a worker failure in the parent, context chained.

    A ``policy="raise"`` budget abort is a *contract outcome*, not a
    fault: it must surface as ``WriteBudgetExceededError`` in every
    executor (serial raises it directly), so the original is re-raised
    with the shard context as its ``__cause__``.  Everything else
    surfaces as the :class:`ShardIngestError`, chained to the original
    exception.
    """
    if isinstance(error.cause, WriteBudgetExceededError):
        raise error.cause from error
    raise error from error.cause


# ----------------------------------------------------------------------
# Sizing and start-method policy
# ----------------------------------------------------------------------
def available_cpus() -> int:
    """CPUs this *process* may actually run on.

    ``os.cpu_count()`` reports the machine, ignoring cgroup quotas and
    CPU affinity masks — inside a 1-CPU container it happily reports
    the host's core count and the pool oversubscribes.  Prefer
    ``os.process_cpu_count`` (3.13+, quota- and affinity-aware), then
    the affinity mask, then the machine count as the last resort.
    """
    process_cpu_count = getattr(os, "process_cpu_count", None)
    if process_cpu_count is not None:
        return process_cpu_count() or 1
    sched_getaffinity = getattr(os, "sched_getaffinity", None)
    if sched_getaffinity is not None:
        try:
            return len(sched_getaffinity(0)) or 1
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return os.cpu_count() or 1


def resolve_workers(num_tasks: int, max_workers: int | None = None) -> int:
    """Pool size for ``num_tasks`` shard tasks.

    Defaults to one worker per task, capped by the CPUs the process
    may run on (oversubscribing a CPU-bound pool only adds scheduling
    overhead); an explicit ``max_workers`` overrides the core cap but
    never exceeds the task count.
    """
    if max_workers is not None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1: {max_workers}")
        return min(max_workers, num_tasks)
    return max(1, min(num_tasks, available_cpus()))


def resolve_start_method(override: str | None = None) -> str:
    """The start method a pool about to launch should use.

    ``fork`` is the cheap default (no re-import), but forking a
    multi-threaded parent copies locks whose owning threads do not
    exist in the child — a serving thread
    (:class:`repro.serve.server.LiveServer`) holding the engine lock at
    fork time deadlocks the worker.  So ``fork`` is only picked when
    the process is single-threaded; otherwise ``forkserver`` (clean
    single-threaded template process) and finally ``spawn``.  An
    explicit ``override`` skips the detection — results are
    bit-identical across methods, so the choice is purely about
    safety and start-up cost.
    """
    methods = multiprocessing.get_all_start_methods()
    if override is not None:
        if override not in START_METHODS:
            raise ValueError(
                f"unknown start method {override!r}; "
                f"choose from {START_METHODS}"
            )
        if override not in methods:
            raise ValueError(
                f"start method {override!r} is unavailable on this "
                f"platform; available: {tuple(methods)}"
            )
        return override
    if "fork" in methods and threading.active_count() == 1:
        return "fork"
    if "forkserver" in methods:
        return "forkserver"
    return "spawn"


# ----------------------------------------------------------------------
# Barrier path (pipeline_depth=0 and the bench baseline)
# ----------------------------------------------------------------------
def ingest_shard(task: ShardTask) -> ShardResult:
    """Worker entry point: rebuild, ingest, snapshot one shard.

    Ndarray payloads ingest through the columnar ``process_chunk``
    fast path, list payloads through the scalar ``process_many`` loop;
    the two are bit-identical on the same items, so the executor
    contract is unchanged.  Module-level (picklable) so it works under
    every start method.  Failures leave as :class:`ShardIngestError`
    with the shard context attached.
    """
    index, state, items = task
    sketch_cls = registry.sketch_class(state["algorithm"])
    shard = sketch_cls.from_state(state)
    try:
        if isinstance(items, np.ndarray):
            shard.process_chunk(items)
        else:
            shard.process_many(items)
    except Exception as error:
        raise wrap_shard_error(index, shard, error) from error
    return index, shard.to_state()


def run_shard_tasks(
    tasks: Sequence[ShardTask],
    max_workers: int | None = None,
    start_method: str | None = None,
) -> list[ShardResult]:
    """Execute shard tasks on a barrier process pool; preserves order.

    A single task (or an explicit ``max_workers=1``) short-circuits to
    in-process execution — same code path as the workers run, without
    pool start-up or pickling overhead.  Worker failures re-raise via
    :func:`reraise_shard_error`: budget aborts keep their type, other
    faults surface as :class:`ShardIngestError`.
    """
    if not tasks:
        return []
    workers = resolve_workers(len(tasks), max_workers)
    try:
        if len(tasks) == 1 or workers == 1:
            return [ingest_shard(task) for task in tasks]
        context = multiprocessing.get_context(
            resolve_start_method(start_method)
        )
        with context.Pool(processes=workers) as pool:
            return pool.map(ingest_shard, tasks)
    except ShardIngestError as error:
        reraise_shard_error(error)


# ----------------------------------------------------------------------
# Pipelined shared-memory pool (the default process executor)
# ----------------------------------------------------------------------
def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to a parent-owned segment without tracking it twice.

    The parent created the segment, registered it with the (shared)
    ``resource_tracker``, and will unlink it in ``close()``.  Python
    3.13's ``track=False`` skips the attach-side re-registration
    entirely.  On older versions the attach-side ``register`` is a
    no-op — pool workers inherit the parent's tracker process, whose
    per-name cache is a set — so a plain attach is already clean.  Do
    NOT ``unregister`` here: with a shared tracker that would strip the
    *parent's* registration and make the parent's ``unlink`` raise a
    KeyError inside the tracker.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: shared tracker, benign re-register
        return shared_memory.SharedMemory(name=name)


def _pipeline_worker(
    worker_id: int,
    shard_states: list[tuple[int, dict[str, Any]]],
    segment_names: dict[int, str],
    slot_items: int,
    depth: int,
    task_queue,
    result_queue,
    free_slots: dict[int, Any],
    failed,
) -> None:
    """Persistent worker: ingest ring-buffer chunks for its shards.

    Rebuilds each owned shard from its empty snapshot, then loops on
    slot descriptors ``(shard, slot, length)``: the chunk is ingested
    *in place* from a numpy view of the shard's shared segment, and the
    slot's semaphore is released only after ``process_chunk`` returns —
    the router can never overwrite a slot still being read.  On the
    ``None`` sentinel the worker snapshots each ingested shard and
    streams the states back one by one (the parent restores them while
    other workers are still ingesting), then reports ``done``.

    Any ingest failure is wrapped with its shard context, reported on
    the result queue, and mirrored in the shared ``failed`` event so a
    router blocked on back-pressure wakes up and aborts.
    """
    shards = {}
    for index, state in shard_states:
        sketch_cls = registry.sketch_class(state["algorithm"])
        shards[index] = sketch_cls.from_state(state)
    segments = {
        index: _attach_segment(name)
        for index, name in segment_names.items()
    }
    views = {
        index: np.ndarray(
            (depth * slot_items,), dtype=np.int64, buffer=segment.buf
        )
        for index, segment in segments.items()
    }
    try:
        while True:
            message = task_queue.get()
            if message is None:
                break
            index, slot, length = message
            view = views[index]
            chunk = view[slot * slot_items: slot * slot_items + length]
            try:
                shards[index].process_chunk(chunk)
            except Exception as error:
                result_queue.put(
                    ("error", wrap_shard_error(index, shards[index], error))
                )
                failed.set()
                return
            finally:
                free_slots[index].release()
        for index, shard in shards.items():
            if shard.items_processed:
                result_queue.put(("state", index, shard.to_state()))
        result_queue.put(("done", worker_id))
    finally:
        # Views alias the shared buffers; drop them before closing or
        # SharedMemory.close() raises BufferError on the exported view.
        del views
        for segment in segments.values():
            segment.close()


class PipelinedShardPool:
    """Persistent worker pool fed by per-shard shared-memory rings.

    Parameters
    ----------
    states:
        ``(shard_index, empty_state)`` for every shard; shard ``i`` is
        owned by worker ``i % workers``.
    slot_items:
        ``int64`` capacity of one ring slot; larger routed parts are
        split across consecutive slots (chunk-boundary invariance makes
        the split bit-neutral).
    depth:
        Slots per shard ring — how far the router may run ahead of the
        worker before back-pressure blocks it.
    max_workers:
        Worker-count cap (``None``: one per shard, capped by
        :func:`available_cpus`).
    start_method:
        Explicit start-method override (``None``: the
        :func:`resolve_start_method` policy).
    """

    def __init__(
        self,
        states: Sequence[tuple[int, dict[str, Any]]],
        *,
        slot_items: int = DEFAULT_CHUNK_SIZE,
        depth: int = DEFAULT_PIPELINE_DEPTH,
        max_workers: int | None = None,
        start_method: str | None = None,
    ) -> None:
        if depth < 1:
            raise ValueError(f"pipeline depth must be >= 1: {depth}")
        if slot_items < 1:
            raise ValueError(f"slot_items must be >= 1: {slot_items}")
        self._slot_items = int(slot_items)
        self._depth = int(depth)
        context = multiprocessing.get_context(
            resolve_start_method(start_method)
        )
        self._workers_n = resolve_workers(max(1, len(states)), max_workers)
        self._segments: dict[int, shared_memory.SharedMemory] = {}
        self._views: dict[int, np.ndarray] = {}
        self._free_slots: dict[int, Any] = {}
        self._next_slot: dict[int, int] = {}
        self._owner: dict[int, int] = {}
        self._result_queue = context.Queue()
        self._failed_event = context.Event()
        self._task_queues = [
            context.SimpleQueue() for _ in range(self._workers_n)
        ]
        nbytes = self._depth * self._slot_items * 8
        assignments: list[list[tuple[int, dict[str, Any]]]] = [
            [] for _ in range(self._workers_n)
        ]
        for position, (index, state) in enumerate(states):
            worker_id = position % self._workers_n
            assignments[worker_id].append((index, state))
            segment = shared_memory.SharedMemory(create=True, size=nbytes)
            self._segments[index] = segment
            self._views[index] = np.ndarray(
                (self._depth * self._slot_items,),
                dtype=np.int64,
                buffer=segment.buf,
            )
            self._free_slots[index] = context.Semaphore(self._depth)
            self._next_slot[index] = 0
            self._owner[index] = worker_id
        self._processes = []
        try:
            for worker_id in range(self._workers_n):
                process = context.Process(
                    target=_pipeline_worker,
                    args=(
                        worker_id,
                        assignments[worker_id],
                        {
                            index: self._segments[index].name
                            for index, _ in assignments[worker_id]
                        },
                        self._slot_items,
                        self._depth,
                        self._task_queues[worker_id],
                        self._result_queue,
                        {
                            index: self._free_slots[index]
                            for index, _ in assignments[worker_id]
                        },
                        self._failed_event,
                    ),
                    daemon=True,
                )
                process.start()
                self._processes.append(process)
        except BaseException:
            self.close()
            raise
        self._closed = False
        self._failure: ShardIngestError | None = None

    @property
    def workers(self) -> int:
        """Worker processes the pool launched."""
        return self._workers_n

    # ------------------------------------------------------------------
    # Routing side
    # ------------------------------------------------------------------
    def submit(self, index: int, part: np.ndarray) -> None:
        """Write one routed part into shard ``index``'s ring.

        Parts larger than a slot are split across consecutive slots
        (bit-neutral: per-shard ingest is chunk-boundary invariant).
        Blocks on the shard's back-pressure semaphore when the ring is
        full; a worker failure turns the wait into the worker's
        re-raised error instead of a deadlock.
        """
        slot_items = self._slot_items
        view = self._views[index]
        for low in range(0, len(part), slot_items):
            piece = part[low:low + slot_items]
            self._acquire_slot(index)
            slot = self._next_slot[index]
            self._next_slot[index] = (slot + 1) % self._depth
            start = slot * slot_items
            view[start:start + len(piece)] = piece
            self._task_queues[self._owner[index]].put(
                (index, slot, len(piece))
            )

    def _acquire_slot(self, index: int) -> None:
        while not self._free_slots[index].acquire(timeout=0.1):
            if self._failed_event.is_set():
                self._raise_failure()
            if not any(p.is_alive() for p in self._processes):
                self._abort_dead_pool()

    def _raise_failure(self) -> None:
        failure = self._failure or self._drain_failure(timeout=5.0)
        self.close()
        if failure is None:  # pragma: no cover - defensive
            raise RuntimeError(
                "pipelined pool failed without reporting an error"
            )
        reraise_shard_error(failure)

    def _abort_dead_pool(self) -> None:
        self.close()
        raise RuntimeError(
            "pipelined pool workers died without reporting an error "
            "(killed?); shard results were discarded"
        )

    def _drain_failure(self, timeout: float) -> ShardIngestError | None:
        try:
            while True:
                message = self._result_queue.get(timeout=timeout)
                if message[0] == "error":
                    self._failure = message[1]
                    return self._failure
        except Empty:
            return None

    # ------------------------------------------------------------------
    # Completion side
    # ------------------------------------------------------------------
    def finish(self) -> Iterator[ShardResult]:
        """Signal end-of-stream and yield shard states as they land.

        States arrive incrementally — a worker that finishes early
        reports while the others are still ingesting, so the caller's
        ``from_state`` restoration (the expensive half of the
        merge-reduce) overlaps the tail of the pipeline.  On a worker
        failure every partial result is discarded and the failure is
        re-raised (budget aborts keep their type); the pool always
        shuts down and unlinks its segments.
        """
        try:
            for queue in self._task_queues:
                queue.put(None)
            done = 0
            while done < self._workers_n:
                try:
                    message = self._result_queue.get(timeout=1.0)
                except Empty:
                    if self._failed_event.is_set():
                        self._raise_failure()
                    if not any(p.is_alive() for p in self._processes):
                        self._abort_dead_pool()
                    continue
                if message[0] == "error":
                    self._failure = message[1]
                    self._raise_failure()
                elif message[0] == "state":
                    yield message[1], message[2]
                else:  # ("done", worker_id)
                    done += 1
            for process in self._processes:
                process.join(timeout=10.0)
        finally:
            self.close()

    def close(self) -> None:
        """Terminate workers and unlink every shared segment.

        Idempotent; called on success, failure, and interpreter-level
        unwinds alike, so no segment outlives the pool.
        """
        if getattr(self, "_closed", False):
            return
        self._closed = True
        for process in getattr(self, "_processes", []):
            if process.is_alive():
                process.terminate()
        for process in getattr(self, "_processes", []):
            process.join(timeout=5.0)
        self._views.clear()
        for segment in self._segments.values():
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments.clear()
        self._result_queue.close()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
