"""Process-pool execution of shard ingest work.

The sharded runtime's ``executor="process"`` mode ships each shard's
buffered updates to a ``multiprocessing`` worker.  A task carries the
shard's *empty* :meth:`~repro.state.algorithm.Sketch.to_state` snapshot
plus its routed items; the worker rebuilds the sketch from the snapshot
(same class, same hash seeds, same deterministic cell ids), runs the
batched ``process_many`` fast path, and returns the ingested
``to_state`` — payload *and* audit — for the parent to restore and
merge-reduce exactly as in serial mode.

Because every piece of sketch randomness lives in the serialized config
(hash seeds, variate seeds) and cell ids are numbered per tracker, the
worker's ingest is bit-identical to what the parent would have computed
itself: the process executor changes wall-clock time, never results.

The pool prefers the ``fork`` start method where available (cheap, no
re-import); elsewhere it falls back to the platform default, which
re-imports :mod:`repro` in each worker.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Sequence, Union

import numpy as np

from repro import registry

#: One shard's work order: ``(shard_index, empty_state, items)``.
#: Chunk-routed work ships the items as one ``int64`` ndarray (pickled
#: as a contiguous buffer, not a list of Python ints); scalar-routed
#: work keeps the historical ``list[int]``.
ShardTask = tuple[int, dict[str, Any], Union["np.ndarray", list[int]]]
#: One shard's result: ``(shard_index, ingested_state)``.
ShardResult = tuple[int, dict[str, Any]]


def ingest_shard(task: ShardTask) -> ShardResult:
    """Worker entry point: rebuild, ingest, snapshot one shard.

    Ndarray payloads ingest through the columnar ``process_chunk``
    fast path, list payloads through the scalar ``process_many`` loop;
    the two are bit-identical on the same items, so the executor
    contract is unchanged.  Module-level (picklable) so it works under
    both ``fork`` and ``spawn`` start methods.
    """
    index, state, items = task
    sketch_cls = registry.sketch_class(state["algorithm"])
    shard = sketch_cls.from_state(state)
    if isinstance(items, np.ndarray):
        shard.process_chunk(items)
    else:
        shard.process_many(items)
    return index, shard.to_state()


def resolve_workers(num_tasks: int, max_workers: int | None = None) -> int:
    """Pool size for ``num_tasks`` shard tasks.

    Defaults to one worker per task, capped by the machine's cores
    (oversubscribing a CPU-bound pool only adds scheduling overhead);
    an explicit ``max_workers`` overrides the core cap but never
    exceeds the task count.
    """
    if max_workers is not None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1: {max_workers}")
        return min(max_workers, num_tasks)
    return max(1, min(num_tasks, os.cpu_count() or 1))


def run_shard_tasks(
    tasks: Sequence[ShardTask], max_workers: int | None = None
) -> list[ShardResult]:
    """Execute shard tasks on a process pool; preserves task order.

    A single task (or an explicit ``max_workers=1``) short-circuits to
    in-process execution — same code path as the workers run, without
    pool start-up or pickling overhead.
    """
    if not tasks:
        return []
    workers = resolve_workers(len(tasks), max_workers)
    if len(tasks) == 1 or workers == 1:
        return [ingest_shard(task) for task in tasks]
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context(
        "fork" if "fork" in methods else None
    )
    with context.Pool(processes=workers) as pool:
        return pool.map(ingest_shard, tasks)
