"""Distributed-ingestion runtime built on the mergeable sketch protocol.

* :mod:`repro.runtime.sharded` — :class:`ShardedRunner`: partition a
  stream over ``K`` sketch shards, batch-ingest (serially, on a thread
  pool via ``executor="thread"``, or on the pipelined shared-memory
  process pool via ``executor="process"``), merge-reduce.
* :mod:`repro.runtime.parallel` — the shard executors: the zero-copy
  :class:`PipelinedShardPool`, the barrier pool
  (:func:`run_shard_tasks`), and the shared sizing/start-method
  policy.  Worker failures carry shard context as
  :class:`ShardIngestError`.
* :mod:`repro.runtime.checkpoint` — :class:`Checkpoint`: JSON
  round-trips of sketch state (estimates + RNG position + audit).
"""

from repro.runtime.checkpoint import Checkpoint
from repro.runtime.parallel import (
    DEFAULT_PIPELINE_DEPTH,
    PipelinedShardPool,
    ShardIngestError,
    available_cpus,
    resolve_start_method,
    resolve_workers,
    run_shard_tasks,
)
from repro.runtime.sharded import ShardedRunner, ShardedRunResult

__all__ = [
    "Checkpoint",
    "DEFAULT_PIPELINE_DEPTH",
    "PipelinedShardPool",
    "ShardIngestError",
    "ShardedRunner",
    "ShardedRunResult",
    "available_cpus",
    "resolve_start_method",
    "resolve_workers",
    "run_shard_tasks",
]
