"""Distributed-ingestion runtime built on the mergeable sketch protocol.

* :mod:`repro.runtime.sharded` — :class:`ShardedRunner`: partition a
  stream over ``K`` sketch shards, batch-ingest (serially or on a
  process pool via ``executor="process"``), merge-reduce.
* :mod:`repro.runtime.parallel` — the process-pool shard executor
  (worker entry point + pool plumbing).
* :mod:`repro.runtime.checkpoint` — :class:`Checkpoint`: JSON
  round-trips of sketch state (estimates + RNG position + audit).
"""

from repro.runtime.checkpoint import Checkpoint
from repro.runtime.parallel import run_shard_tasks
from repro.runtime.sharded import ShardedRunner, ShardedRunResult

__all__ = [
    "Checkpoint",
    "ShardedRunner",
    "ShardedRunResult",
    "run_shard_tasks",
]
