"""Distributed-ingestion runtime built on the mergeable sketch protocol.

* :mod:`repro.runtime.sharded` — :class:`ShardedRunner`: partition a
  stream over ``K`` sketch shards, batch-ingest, merge-reduce.
* :mod:`repro.runtime.checkpoint` — :class:`Checkpoint`: JSON
  round-trips of sketch state (estimates + audit).
"""

from repro.runtime.checkpoint import Checkpoint
from repro.runtime.sharded import ShardedRunner, ShardedRunResult

__all__ = [
    "Checkpoint",
    "ShardedRunner",
    "ShardedRunResult",
]
