"""Checkpointing: round-trip sketch state through the serialization hooks.

A checkpoint is the JSON encoding of
:meth:`~repro.state.algorithm.Sketch.to_state`: constructor config,
register payload, and the full tracker audit.  Restoring rebuilds the
sketch through :mod:`repro.registry` (the snapshot names its own class),
reproducing estimates *and* the state-change report exactly, so a
long-running ingest can stop, persist, and resume without losing its
audit.

Hash randomness is rebuilt from the stored seeds and matches the
original; Morris coin-flip RNGs are restored to their exact snapshotted
generator state (see ``Sketch.from_state``), so a resumed run flips the
same coins the uninterrupted run would have.

Checkpoints are also *resumable mid-stream*: the snapshot records the
stream offset (the number of updates already consumed, duplicated into
an explicit ``"stream_offset"`` field for self-description), and
:meth:`Checkpoint.resume` continues a chunked ingest from exactly that
offset — completed chunks are skipped without being replayed or even
materialized (:meth:`~repro.streams.chunked.ChunkedStream.chunks`
``start=``), and the finished sketch is bit-identical to an
uninterrupted run.
"""

from __future__ import annotations

import itertools
import json
import pathlib
from typing import Any, Iterable

import numpy as np

from repro import registry
from repro.state.algorithm import Sketch
from repro.streams.chunked import ChunkedStream


class Checkpoint:
    """Serialize sketches to JSON strings or files and restore them."""

    @staticmethod
    def dumps(sketch: Sketch) -> str:
        """Encode ``sketch`` as a JSON checkpoint string.

        The snapshot carries an explicit ``stream_offset`` (the number
        of stream updates consumed so far) alongside the state, so a
        checkpoint is self-describing about where in the stream the
        run stopped.
        """
        state = sketch.to_state()
        state["stream_offset"] = sketch.items_processed
        return json.dumps(state)

    @staticmethod
    def loads(text: str) -> Sketch:
        """Rebuild a sketch from :meth:`dumps` output.

        The sketch class is resolved from the snapshot's ``"algorithm"``
        field via the registry, so callers need not know the type.
        """
        state: dict[str, Any] = json.loads(text)
        cls = registry.sketch_class(state["algorithm"])
        return cls.from_state(state)

    @staticmethod
    def offset(text: str) -> int:
        """The stream offset recorded in a checkpoint string.

        Falls back to the snapshot's ``items_processed`` for
        checkpoints written before the explicit field existed.
        """
        state: dict[str, Any] = json.loads(text)
        if "stream_offset" in state:
            return int(state["stream_offset"])
        return int(state.get("items_processed", 0))

    @staticmethod
    def save(path: str | pathlib.Path, sketch: Sketch) -> pathlib.Path:
        """Write a checkpoint file; returns the path written."""
        path = pathlib.Path(path)
        path.write_text(Checkpoint.dumps(sketch) + "\n")
        return path

    @staticmethod
    def load(path: str | pathlib.Path) -> Sketch:
        """Restore a sketch from a :meth:`save` file."""
        return Checkpoint.loads(pathlib.Path(path).read_text())

    @staticmethod
    def resume(
        path: str | pathlib.Path,
        stream: Iterable[int],
        chunk_size: int | None = None,
    ) -> Sketch:
        """Restore a checkpoint and finish ingesting ``stream``.

        ``stream`` must be the *full* stream of the original run; the
        recorded offset decides where ingestion picks up, so completed
        updates are never replayed.  Chunked streams
        (:class:`~repro.streams.chunked.ChunkedStream` or an
        ``np.ndarray``) skip the completed prefix without
        materializing it and continue through the columnar fast path
        (at ``chunk_size``, if given); plain iterables are skipped
        item by item.  The returned sketch — payload, audit, answers,
        and coin-RNG position — is bit-identical to one that ingested
        the whole stream uninterrupted.
        """
        sketch = Checkpoint.load(path)
        offset = sketch.items_processed
        if isinstance(stream, np.ndarray):
            stream = ChunkedStream(stream)
        chunks = getattr(stream, "chunks", None)
        if chunks is not None:
            for chunk in chunks(chunk_size, start=offset):
                sketch.process_chunk(chunk)
        else:
            sketch.process_many(itertools.islice(stream, offset, None))
        return sketch
