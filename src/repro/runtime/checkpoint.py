"""Checkpointing: round-trip sketch state through the serialization hooks.

A checkpoint is the JSON encoding of
:meth:`~repro.state.algorithm.Sketch.to_state`: constructor config,
register payload, and the full tracker audit.  Restoring rebuilds the
sketch through :mod:`repro.registry` (the snapshot names its own class),
reproducing estimates *and* the state-change report exactly, so a
long-running ingest can stop, persist, and resume without losing its
audit.

Hash randomness is rebuilt from the stored seeds and matches the
original; Morris coin-flip RNGs are restored to their exact snapshotted
generator state (see ``Sketch.from_state``), so a resumed run flips the
same coins the uninterrupted run would have.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

from repro import registry
from repro.state.algorithm import Sketch


class Checkpoint:
    """Serialize sketches to JSON strings or files and restore them."""

    @staticmethod
    def dumps(sketch: Sketch) -> str:
        """Encode ``sketch`` as a JSON checkpoint string."""
        return json.dumps(sketch.to_state())

    @staticmethod
    def loads(text: str) -> Sketch:
        """Rebuild a sketch from :meth:`dumps` output.

        The sketch class is resolved from the snapshot's ``"algorithm"``
        field via the registry, so callers need not know the type.
        """
        state: dict[str, Any] = json.loads(text)
        cls = registry.sketch_class(state["algorithm"])
        return cls.from_state(state)

    @staticmethod
    def save(path: str | pathlib.Path, sketch: Sketch) -> pathlib.Path:
        """Write a checkpoint file; returns the path written."""
        path = pathlib.Path(path)
        path.write_text(Checkpoint.dumps(sketch) + "\n")
        return path

    @staticmethod
    def load(path: str | pathlib.Path) -> Sketch:
        """Restore a sketch from a :meth:`save` file."""
        return Checkpoint.loads(pathlib.Path(path).read_text())
