"""CountSketch [CCF04] (Table 1, row 4 — the L2 baseline).

``depth`` rows of ``width`` signed counters; item ``i`` adds
``sign_r(i)`` to cell ``h_r(i)`` in every row.  A point query takes the
median over rows of ``sign_r(i) * cell``, an unbiased estimate with
additive error ``O(||f||_2 / sqrt(width))``.  Writes on every update:
``Theta(m)`` state changes.
"""

from __future__ import annotations

import math
import statistics

import numpy as np

from repro.baselines._merge_kernels import add_cells
from repro.hashing.prime_field import KWiseHash
from repro.query import (
    Moment,
    MomentAnswer,
    MultiPointQuery,
    PointQuery,
    QueryKind,
    ScalarAnswer,
)
from repro.state.algorithm import StreamAlgorithm
from repro.state.registers import TrackedArray
from repro.state.tracker import StateTracker


class CountSketch(StreamAlgorithm):
    """CountSketch with ``depth x width`` signed tracked counters.

    A linear sketch: instances sharing ``(width, depth, seed)`` merge
    by cell-wise addition, exactly matching a single-instance run.
    """

    name = "CountSketch"
    mergeable = True
    supports = frozenset({QueryKind.POINT, QueryKind.MOMENT})

    def __init__(
        self,
        width: int,
        depth: int,
        seed: int | None = None,
        tracker: StateTracker | None = None,
    ) -> None:
        if width < 1 or depth < 1:
            raise ValueError(f"need width, depth >= 1: {width}x{depth}")
        super().__init__(tracker)
        self.width = width
        self.depth = depth
        self.seed = 0 if seed is None else seed
        self._rows = [
            TrackedArray(self.tracker, f"cs[{r}]", width, fill=0)
            for r in range(depth)
        ]
        base = self.seed
        self._bucket_hashes = [
            KWiseHash(2, seed=base + 1000 * r) for r in range(depth)
        ]
        self._sign_hashes = [
            KWiseHash(4, seed=base + 1000 * r + 500) for r in range(depth)
        ]
        self.tracker.allocate(
            sum(h.description_words for h in self._bucket_hashes)
            + sum(h.description_words for h in self._sign_hashes)
        )

    @classmethod
    def for_accuracy(
        cls,
        epsilon: float,
        delta: float = 0.05,
        seed: int | None = None,
        tracker: StateTracker | None = None,
    ) -> "CountSketch":
        """Sketch with additive error ``eps*||f||_2`` w.p. ``1 - delta``."""
        width = max(1, int(math.ceil(6.0 / epsilon**2)))
        depth = max(1, int(math.ceil(2.0 * math.log(1.0 / delta))))
        if depth % 2 == 0:
            depth += 1  # odd depth keeps the median well defined
        return cls(width, depth, seed=seed, tracker=tracker)

    def _update(self, item: int) -> None:
        for row, bucket_hash, sign_hash in zip(
            self._rows, self._bucket_hashes, self._sign_hashes
        ):
            bucket = bucket_hash.bucket(item, self.width)
            row[bucket] = row[bucket] + sign_hash.sign(item)

    def _update_chunk(self, chunk: np.ndarray) -> None:
        # Vectorized kernel: bucket + sign hashes per row, the signed
        # deltas scattered with np.add.at.  Every update writes ±1 to
        # depth cells — each write mutates even when per-bucket deltas
        # net to zero across the chunk, so the audit charges one write
        # per (update, row), exactly like the scalar loop.
        k = len(chunk)
        tracker = self.tracker
        cells = {} if tracker.needs_cell_ids else None
        for r, (row, bucket_hash, sign_hash) in enumerate(
            zip(self._rows, self._bucket_hashes, self._sign_hashes)
        ):
            buckets = bucket_hash.bucket_many(chunk, self.width)
            delta = np.zeros(self.width, dtype=np.int64)
            np.add.at(delta, buckets, sign_hash.sign_many(chunk))
            # Touching only the net-nonzero cells is exact: a bucket
            # whose ±1s cancel keeps its value either way (the writes
            # are still charged above, like the scalar loop's).
            touched = np.flatnonzero(delta)
            row.add_at(touched.tolist(), delta[touched].tolist())
            if cells is not None:
                counts = np.bincount(buckets, minlength=self.width)
                for bucket in np.flatnonzero(counts).tolist():
                    cells[f"cs[{r}][{bucket}]"] = int(counts[bucket])
        writes = k * self.depth
        tracker.record_chunk(k, k, writes, writes, cells)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _answer_point(self, q: PointQuery) -> ScalarAnswer:
        """Point query: median over rows of the signed cell values."""
        item = q.item
        votes = [
            sign_hash.sign(item) * row[bucket_hash.bucket(item, self.width)]
            for row, bucket_hash, sign_hash in zip(
                self._rows, self._bucket_hashes, self._sign_hashes
            )
        ]
        return ScalarAnswer(QueryKind.POINT, float(statistics.median(votes)))

    def _answer_point_many(
        self, q: MultiPointQuery
    ) -> tuple[ScalarAnswer, ...]:
        """Batch point queries: chunked bucket + sign hashes, exact
        integer median.

        One ``bucket_many``/``sign_many`` evaluation per row builds a
        ``depth x batch`` vote matrix; the median is taken per column
        on sorted int64 votes — the middle element for odd depth, the
        exact integer midpoint sum divided by 2 for even depth — which
        reproduces ``statistics.median`` of the scalar loop's Python
        ints bit for bit (the division by two of an exact int64 sum is
        correctly rounded either way).
        """
        if not q.items:
            return ()
        if self.width > 64 * len(q.items):
            # Tiny batch against wide rows: materializing the rows
            # costs more than the scalar hashes it saves.
            return super()._answer_point_many(q)
        items = np.asarray(q.items, dtype=np.int64)
        votes = np.empty((self.depth, len(items)), dtype=np.int64)
        for r, (row, bucket_hash, sign_hash) in enumerate(
            zip(self._rows, self._bucket_hashes, self._sign_hashes)
        ):
            cells = np.fromiter(row, dtype=np.int64, count=self.width)
            votes[r] = sign_hash.sign_many(items) * (
                cells[bucket_hash.bucket_many(items, self.width)]
            )
        votes.sort(axis=0)
        mid = self.depth // 2
        if self.depth % 2:
            medians = votes[mid].astype(np.float64)
        else:
            medians = (votes[mid - 1] + votes[mid]) / 2.0
        return tuple(
            ScalarAnswer(QueryKind.POINT, value)
            for value in medians.tolist()
        )

    def _answer_moment(self, q: Moment) -> MomentAnswer:
        """``F2``: median over rows of the row's squared mass."""
        if q.p is not None and q.p != 2.0:
            raise ValueError(f"CountSketch answers only p=2 moments: {q.p}")
        row_sums = [sum(cell * cell for cell in row) for row in self._rows]
        return MomentAnswer(
            QueryKind.MOMENT, float(statistics.median(row_sums)), p=2.0
        )

    def estimate(self, item: int) -> float:
        """Point query: median over rows of the signed cell values."""
        return self.query(PointQuery(item)).value

    def f2_estimate(self) -> float:
        """``F2`` estimate: median over rows of the row's squared mass."""
        return self.query(Moment(2.0)).value

    # ------------------------------------------------------------------
    # Mergeable sketch protocol
    # ------------------------------------------------------------------
    def _merge_same_type(self, other: "CountSketch") -> None:
        if (other.width, other.depth, other.seed) != (
            self.width,
            self.depth,
            self.seed,
        ):
            raise ValueError(
                f"incompatible CountSketch sketches: "
                f"{self.width}x{self.depth}/seed={self.seed} vs "
                f"{other.width}x{other.depth}/seed={other.seed}"
            )
        for row, other_row in zip(self._rows, other._rows):
            row.load(add_cells(row, other_row))

    def _clone_registers(self, tracker: StateTracker) -> None:
        # Rows carry the only mutable state; the bucket and sign hash
        # descriptions are immutable and stay shared.
        self._rows = [row.clone_to(tracker) for row in self._rows]

    def _config_state(self) -> dict:
        return {"width": self.width, "depth": self.depth, "seed": self.seed}

    def _payload_state(self) -> dict:
        return {"rows": [list(row) for row in self._rows]}

    def _load_payload(self, payload: dict) -> None:
        for row, values in zip(self._rows, payload["rows"]):
            row.load([int(v) for v in values])
