"""Misra–Gries deterministic heavy hitters [MG82] (Table 1, row 1).

Maintains at most ``k - 1`` counters; a stream update either increments
its item's counter, inserts it if a slot is free, or decrements *every*
counter by one.  Estimates satisfy ``f_i - m/k <= fhat_i <= f_i``, so
``k = 2/eps`` solves the ``L1``-heavy-hitter problem.  Every update
writes, so the algorithm makes ``Theta(m)`` state changes — the
behaviour the paper contrasts against.
"""

from __future__ import annotations

import numpy as np

from repro.baselines._dict_summary import (
    DictSummaryQueries,
    chunk_with_tracked_segments,
    dict_payload,
    load_dict_payload,
)
from repro.baselines._merge_kernels import fold_counts, subtract_kth
from repro.query import (
    AllEstimates,
    HeavyHitters,
    MapAnswer,
    PointQuery,
    QueryKind,
)
from repro.state.algorithm import StreamAlgorithm
from repro.state.registers import TrackedDict
from repro.state.tracker import StateTracker


class MisraGries(DictSummaryQueries, StreamAlgorithm):
    """Misra–Gries summary with ``k - 1`` counters.

    Mergeable per [ACHPWY12] ("Mergeable Summaries"): add the two
    summaries' counters, then subtract the ``k``-th largest combined
    count from every entry and drop the non-positive ones.  The merged
    summary keeps the ``f_i - (m_1 + m_2)/k <= fhat_i <= f_i``
    guarantee of a single instance over the concatenated stream.
    """

    name = "Misra-Gries"
    mergeable = True
    supports = frozenset(
        {QueryKind.POINT, QueryKind.ALL_ESTIMATES, QueryKind.HEAVY_HITTERS}
    )

    def __init__(self, k: int, tracker: StateTracker | None = None) -> None:
        if k < 2:
            raise ValueError(f"Misra-Gries needs k >= 2: {k}")
        super().__init__(tracker)
        self.k = k
        self._counters: TrackedDict[int, int] = TrackedDict(self.tracker, "mg")

    def _update(self, item: int) -> None:
        if item in self._counters:
            self._counters[item] = self._counters[item] + 1
        elif len(self._counters) < self.k - 1:
            self._counters[item] = 1
        else:
            # Decrement-all; counters hitting zero are evicted.
            expired = []
            for tracked, count in self._counters.items():
                if count == 1:
                    expired.append(tracked)
                else:
                    self._counters[tracked] = count - 1
            for tracked in expired:
                del self._counters[tracked]

    def _update_chunk(self, chunk: np.ndarray) -> None:
        # Candidate-filter pre-pass: segments of already-tracked items
        # bulk-increment; untracked items replay scalar.  A structural
        # step removes keys only via decrement-all evictions, which
        # shrink the table — inserts only grow it — so the segment
        # mask stays valid exactly while the length never drops.
        chunk_with_tracked_segments(
            self, chunk, "mg", lambda before, after: after < before
        )

    # ------------------------------------------------------------------
    # Queries (point/all-estimates hooks come from DictSummaryQueries)
    # ------------------------------------------------------------------
    def _answer_heavy_hitters(self, q: HeavyHitters) -> MapAnswer:
        """Tracked items that may be ``phi``-heavy (default ``phi=1/k``).

        Counters underestimate by at most ``m/k``, so a true
        ``phi``-heavy hitter (``f >= phi*m``) is guaranteed a counter
        of at least ``(phi - 1/k)*m`` — that is the report threshold
        (no false negatives).  With the default ``phi = 1/k`` the
        threshold is 0: every survivor is a candidate, which is all a
        ``k``-counter summary can certify.
        """
        phi = (1.0 / self.k) if q.phi is None else q.phi
        if not 0 < phi <= 1:
            raise ValueError(f"phi must be in (0, 1]: {phi}")
        threshold = max(0.0, phi - 1.0 / self.k) * self.items_processed
        return MapAnswer(
            QueryKind.HEAVY_HITTERS,
            {
                item: float(count)
                for item, count in self._counters.items()
                if count >= threshold
            },
        )

    def estimate(self, item: int) -> float:
        """Underestimate of ``f_item`` (within ``m/k`` of the truth)."""
        return self.query(PointQuery(item)).value

    def estimates(self) -> dict[int, float]:
        """All currently tracked (item, count) pairs."""
        return dict(self.query(AllEstimates()).values)

    def heavy_hitters(self, phi: float | None = None) -> dict[int, float]:
        """Tracked items with count at least ``phi * m``."""
        return dict(self.query(HeavyHitters(phi)).values)

    def additive_error_bound(self) -> float:
        """Worst-case underestimation ``m/k`` after ``m`` updates."""
        return self.items_processed / self.k

    # ------------------------------------------------------------------
    # Mergeable sketch protocol
    # ------------------------------------------------------------------
    def _merge_same_type(self, other: "MisraGries") -> None:
        if other.k != self.k:
            raise ValueError(
                f"incompatible Misra-Gries summaries: k={self.k} vs "
                f"k={other.k}"
            )
        combined = fold_counts(self._counters, other._counters)
        if len(combined) > self.k - 1:
            # Subtract the k-th largest combined count; at most k - 1
            # entries stay positive ([ACHPWY12] merge rule).
            combined = subtract_kth(combined, self.k)
        self._counters.load(combined)

    def _clone_registers(self, tracker: StateTracker) -> None:
        self._counters = self._counters.clone_to(tracker)

    def _config_state(self) -> dict:
        return {"k": self.k}

    def _payload_state(self) -> dict:
        return {"counters": dict_payload(self._counters)}

    def _load_payload(self, payload: dict) -> None:
        load_dict_payload(self._counters, payload["counters"])
