"""Naive sample-and-hold with *global* smallest-counter eviction.

This is the [EV02]-style strategy the paper contrasts with in
Section 1.4: sample stream updates, hold an exact counter for each
sampled item, and when the counter table overflows evict the entries
with the globally smallest counts.  On the Section 1.4 pseudo-heavy
counterexample this policy repeatedly evicts the true heavy hitter
(whose counter is always locally small) in favour of pseudo-heavy items
— the failure mode the paper's dyadic age-bucketed maintenance avoids.
Reproduced here as the ablation baseline for experiment A2.
"""

from __future__ import annotations

import random

from repro.baselines._dict_summary import DictSummaryQueries
from repro.query import AllEstimates, PointQuery, QueryKind
from repro.state.algorithm import StreamAlgorithm
from repro.state.registers import TrackedDict
from repro.state.tracker import StateTracker


class NaiveSampleAndHold(DictSummaryQueries, StreamAlgorithm):
    """Sample-and-hold with global smallest-count eviction ([EV02]-style).

    Parameters
    ----------
    sample_probability:
        Probability of admitting an unsampled update into the table.
    capacity:
        Maximum number of held counters; on overflow the smallest half
        (globally, regardless of age) is evicted.
    """

    name = "NaiveSampleAndHold"
    supports = frozenset({QueryKind.POINT, QueryKind.ALL_ESTIMATES})

    def __init__(
        self,
        sample_probability: float,
        capacity: int,
        rng: random.Random | None = None,
        seed: int | None = None,
        tracker: StateTracker | None = None,
    ) -> None:
        if not 0 < sample_probability <= 1:
            raise ValueError(
                f"sample probability must be in (0, 1]: {sample_probability}"
            )
        if capacity < 2:
            raise ValueError(f"capacity must be >= 2: {capacity}")
        super().__init__(tracker)
        self.sample_probability = sample_probability
        self.capacity = capacity
        self._rng = rng if rng is not None else random.Random(seed)
        self._counters: TrackedDict[int, int] = TrackedDict(self.tracker, "nsh")

    def _update(self, item: int) -> None:
        if item in self._counters:
            self._counters[item] = self._counters[item] + 1
            return
        if self._rng.random() >= self.sample_probability:
            return
        self._counters[item] = 1
        if len(self._counters) > self.capacity:
            self._evict_smallest_half()

    def _evict_smallest_half(self) -> None:
        """Drop the half of the table with the smallest counts."""
        by_count = sorted(self._counters.items(), key=lambda kv: kv[1])
        for item, _ in by_count[: len(by_count) // 2]:
            del self._counters[item]

    # ------------------------------------------------------------------
    # Queries (hooks come from DictSummaryQueries)
    # ------------------------------------------------------------------
    def estimate(self, item: int) -> float:
        """Held count for ``item`` (an underestimate), 0 if not held."""
        return self.query(PointQuery(item)).value

    def estimates(self) -> dict[int, float]:
        """All currently held counters."""
        return dict(self.query(AllEstimates()).values)
