"""Classical streaming baselines (the Table 1 competitors).

All write to their memory on (nearly) every update, so their state-
change count is ``Theta(m)``; the experiment suite audits this against
the paper's ``Õ(n^{1-1/p})`` algorithms on the shared tracked-memory
substrate.
"""

from repro.baselines.ams import AMSSketch
from repro.baselines.count_min import CountMin
from repro.baselines.count_min_morris import CountMinMorris
from repro.baselines.count_sketch import CountSketch
from repro.baselines.exact import ExactFrequencyCounter
from repro.baselines.misra_gries import MisraGries
from repro.baselines.naive_sample_hold import NaiveSampleAndHold
from repro.baselines.reservoir import ReservoirSampler
from repro.baselines.space_saving import SpaceSaving

__all__ = [
    "AMSSketch",
    "CountMin",
    "CountMinMorris",
    "CountSketch",
    "ExactFrequencyCounter",
    "MisraGries",
    "NaiveSampleAndHold",
    "ReservoirSampler",
    "SpaceSaving",
]
