"""Vectorized merge kernels for the mergeable families.

A sketch merge is an offline reduce applied through the registers'
untracked ``load`` path, so the only thing a kernel may change is the
wall clock.  **Contract: bit-identical to the scalar loops they
replace** — same values (``int64`` arithmetic surfaced back as Python
ints via ``.tolist()``), and the same *dict insertion order*, which is
observable through ``_payload_state`` serialization.  Inputs that do
not fit the vectorized form (short rows where the numpy round trip
costs more than it saves, keys or counts beyond ``int64``) take the
scalar path inside the kernel, so call sites never branch.
"""

from __future__ import annotations

import numpy as np

from repro.baselines._dict_summary import added_counts

#: Shortest row / summary worth routing through numpy: below this the
#: array round trip costs more than the scalar loop it replaces.
MIN_BULK_MERGE = 64


def add_cells(mine, theirs) -> list[int]:
    """Elementwise sum of two equal-length cell sequences.

    The merge rule of every linear sketch (CountMin / CountSketch rows,
    AMS sign-sums).  Results are Python ints either way.
    """
    n = len(mine)
    if n >= MIN_BULK_MERGE:
        try:
            a = np.fromiter(mine, dtype=np.int64, count=n)
            b = np.fromiter(theirs, dtype=np.int64, count=n)
        except (OverflowError, ValueError, TypeError):
            pass  # counts beyond int64 (or non-int cells): scalar
        else:
            return (a + b).tolist()
    return [a + b for a, b in zip(mine, theirs)]


def fold_counts(mine, theirs) -> dict[int, int]:
    """Entrywise sum of two (item → count) mappings.

    The vectorized twin of
    :func:`~repro.baselines._dict_summary.added_counts`, including its
    insertion order: ``mine``'s keys first (in ``mine``'s order, with
    summed values), then ``theirs``'s new keys in ``theirs``'s order.
    """
    nm, nt = len(mine), len(theirs)
    if nm < MIN_BULK_MERGE or nt < MIN_BULK_MERGE:
        return added_counts(mine, theirs)
    try:
        km = np.fromiter(mine.keys(), dtype=np.int64, count=nm)
        vm = np.fromiter(mine.values(), dtype=np.int64, count=nm)
        kt = np.fromiter(theirs.keys(), dtype=np.int64, count=nt)
        vt = np.fromiter(theirs.values(), dtype=np.int64, count=nt)
    except (OverflowError, ValueError, TypeError):
        return added_counts(mine, theirs)
    order = np.argsort(km, kind="stable")
    sorted_km = km[order]
    # A position of nm means the key is past every sorted key; the
    # clipped compare is then against a strictly smaller key, so the
    # hit mask stays correct.
    pos = np.minimum(np.searchsorted(sorted_km, kt), nm - 1)
    hit = sorted_km[pos] == kt
    vm[order[pos[hit]]] += vt[hit]  # keys are unique: no repeated index
    combined = dict(zip(km.tolist(), vm.tolist()))
    for item, count in zip(kt[~hit].tolist(), vt[~hit].tolist()):
        combined[item] = count
    return combined


def subtract_kth(combined: dict[int, int], k: int) -> dict[int, int]:
    """The [ACHPWY12] Misra–Gries merge cut.

    Subtract the ``k``-th largest count from every entry and drop the
    non-positive ones; survivors keep ``combined``'s insertion order.
    """
    n = len(combined)
    if n >= MIN_BULK_MERGE:
        try:
            keys = np.fromiter(combined.keys(), dtype=np.int64, count=n)
            values = np.fromiter(combined.values(), dtype=np.int64, count=n)
        except (OverflowError, ValueError, TypeError):
            pass
        else:
            kth = int(np.partition(values, n - k)[n - k])
            kept = values > kth
            return dict(
                zip(keys[kept].tolist(), (values[kept] - kth).tolist())
            )
    kth = sorted(combined.values(), reverse=True)[k - 1]
    return {
        item: count - kth
        for item, count in combined.items()
        if count - kth > 0
    }


def top_k(combined: dict[int, int], k: int) -> dict[int, int]:
    """The parallel-SpaceSaving survivor cut: the ``k`` largest counts.

    Result order matches the scalar ``sorted(..., reverse=True)[:k]``:
    descending count, ties keeping ``combined``'s order (both sorts are
    stable).
    """
    n = len(combined)
    if n >= MIN_BULK_MERGE:
        try:
            keys = np.fromiter(combined.keys(), dtype=np.int64, count=n)
            values = np.fromiter(combined.values(), dtype=np.int64, count=n)
        except (OverflowError, ValueError, TypeError):
            pass
        else:
            order = np.argsort(-values, kind="stable")[:k]
            return dict(
                zip(keys[order].tolist(), values[order].tolist())
            )
    survivors = sorted(
        combined.items(), key=lambda kv: kv[1], reverse=True
    )[:k]
    return dict(survivors)
