"""Shared helpers for the dict-backed summaries.

``ExactFrequencyCounter``, ``MisraGries``, ``SpaceSaving``, and
``NaiveSampleAndHold`` all keep an (item → count)
:class:`~repro.state.registers.TrackedDict` in ``self._counters``; the
point/all-estimates query hooks, the add-merge over two summaries, and
the ``[[item, count], ...]`` payload round-trip are identical across
them and live here so the family-specific rules (heavy-hitter
thresholds, k-th-largest subtraction, minimum floors) stay the only
per-class code.
"""

from __future__ import annotations

from repro.query import (
    AllEstimates,
    MapAnswer,
    PointQuery,
    QueryKind,
    ScalarAnswer,
)


class DictSummaryQueries:
    """Query hooks shared by the (item → count) summary families.

    Mixed in before :class:`~repro.state.algorithm.Sketch`; expects
    the counters in ``self._counters``.
    """

    def _answer_point(self, q: PointQuery) -> ScalarAnswer:
        return ScalarAnswer(
            QueryKind.POINT, float(self._counters.get(q.item, 0))
        )

    def _answer_all_estimates(self, q: AllEstimates) -> MapAnswer:
        return MapAnswer(
            QueryKind.ALL_ESTIMATES,
            {item: float(count) for item, count in self._counters.items()},
        )


def added_counts(mine, theirs) -> dict[int, int]:
    """Entrywise sum of two (item → count) mappings."""
    combined = dict(mine.items())
    for item, count in theirs.items():
        combined[item] = combined.get(item, 0) + count
    return combined


def dict_payload(cells) -> list[list[int]]:
    """JSON-safe ``[[item, count], ...]`` snapshot of a tracked dict."""
    return [[item, count] for item, count in cells.items()]


def load_dict_payload(cells, pairs) -> None:
    """Restore a :func:`dict_payload` snapshot (untracked load)."""
    cells.load({int(item): int(count) for item, count in pairs})
