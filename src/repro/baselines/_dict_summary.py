"""Shared helpers for the dict-backed summaries.

``ExactFrequencyCounter``, ``MisraGries``, ``SpaceSaving``, and
``NaiveSampleAndHold`` all keep an (item → count)
:class:`~repro.state.registers.TrackedDict` in ``self._counters``; the
point/all-estimates query hooks, the add-merge over two summaries, and
the ``[[item, count], ...]`` payload round-trip are identical across
them and live here so the family-specific rules (heavy-hitter
thresholds, k-th-largest subtraction, minimum floors) stay the only
per-class code.
"""

from __future__ import annotations

import numpy as np

from repro.query import (
    AllEstimates,
    MapAnswer,
    MultiPointQuery,
    PointQuery,
    QueryKind,
    ScalarAnswer,
)


class DictSummaryQueries:
    """Query hooks shared by the (item → count) summary families.

    Mixed in before :class:`~repro.state.algorithm.Sketch`; expects
    the counters in ``self._counters``.
    """

    def _answer_point(self, q: PointQuery) -> ScalarAnswer:
        return ScalarAnswer(
            QueryKind.POINT, float(self._counters.get(q.item, 0))
        )

    def _answer_all_estimates(self, q: AllEstimates) -> MapAnswer:
        return MapAnswer(
            QueryKind.ALL_ESTIMATES,
            {item: float(count) for item, count in self._counters.items()},
        )

    def _answer_point_many(
        self, q: MultiPointQuery
    ) -> tuple[ScalarAnswer, ...]:
        """Batch point queries: one bulk lookup pass over the summary
        (no per-item query construction or dispatch)."""
        get = self._counters.get
        return tuple(
            ScalarAnswer(QueryKind.POINT, float(get(item, 0)))
            for item in q.items
        )


#: Shortest tracked segment worth bulk-incrementing: below this the
#: np.unique + dict-merge machinery costs more than the scalar steps
#: it replaces, so shorter segments replay scalar (same results, the
#: pre-pass then costs one membership mask and nothing else).
MIN_BULK_SEGMENT = 32


def increment_tracked_segment(counters, tracker, segment, name) -> None:
    """Bulk-increment a segment of *already-tracked* chunk items.

    A chunk update whose item is already tracked is a pure counter
    increment — one mutating write, one state change, no structural
    decision — and increments commute within a segment, so the whole
    segment folds in one step: ``np.unique`` + dict merge through the
    untracked load, then one bulk accounting call (per update: one
    write attempt, one mutating write, ``X_t = 1``; per cell, its
    occurrence count in the wear histogram).  Callers guarantee every
    segment item is currently tracked.
    """
    if not len(segment):
        return
    uniq, counts = np.unique(segment, return_counts=True)
    merged = {}
    cells = {} if tracker.needs_cell_ids else None
    for item, count in zip(uniq.tolist(), counts.tolist()):
        merged[item] = counters[item] + count
        if cells is not None:
            cells[f"{name}[{item}]"] = count
    counters.load_update(merged)  # touched entries only, no table copy
    run = len(segment)
    tracker.record_chunk(run, run, run, run, cells)


def chunk_with_tracked_segments(
    sketch, chunk, name, keys_removed
) -> None:
    """Candidate-filter chunk kernel for the (item → count) summaries.

    One membership pre-pass over the chunk (``np.isin`` against the
    tracked set at chunk entry) splits it into segments of tracked
    items — bulk-incremented via :func:`increment_tracked_segment` —
    separated by *untracked* items, which replay through the scalar
    step (insert / eviction / decrement-all, the structural moves).

    The pre-pass mask is sound only while no key leaves the tracked
    set: structural steps may *insert* keys (a stale ``False`` merely
    sends that item down the scalar path, which handles tracked items
    too), but a *removal* could leave a stale ``True``.  After each
    structural step the family-specific ``keys_removed(len_before,
    len_after)`` predicate decides whether the mask is still valid;
    once keys have been removed, the rest of the chunk is replayed
    scalar.
    """
    counters = sketch._counters
    if len(counters):
        keys = np.fromiter(
            counters.keys(), dtype=np.int64, count=len(counters)
        )
        mask = np.isin(chunk, keys)
        breaks = np.flatnonzero(~mask).tolist()
    else:
        breaks = list(range(len(chunk)))
    tracker = sketch.tracker
    # Bound-local scalar loop, same shape as process_many's hot loop
    # (the replayed remainder must not pay method-dispatch per item).
    update = sketch._update
    tick = tracker.tick
    admit = getattr(tracker, "admit_update", None)

    def scalar_run(items: list[int]) -> None:
        if admit is None:
            for item in items:
                update(item)
                tick()
        else:
            for item in items:
                if admit():
                    update(item)
                tick()

    def apply_segment(low: int, high: int) -> None:
        if high - low >= MIN_BULK_SEGMENT:
            increment_tracked_segment(
                counters, tracker, chunk[low:high], name
            )
        else:  # too short for the bulk machinery to pay off
            scalar_run(chunk[low:high].tolist())

    position = 0
    total = len(chunk)
    for break_at in breaks:
        apply_segment(position, break_at)
        len_before = len(counters)
        if admit is None or admit():
            update(int(chunk[break_at]))
        tick()
        position = break_at + 1
        if keys_removed(len_before, len(counters)):
            scalar_run(chunk[position:].tolist())
            return
    apply_segment(position, total)


def added_counts(mine, theirs) -> dict[int, int]:
    """Entrywise sum of two (item → count) mappings."""
    combined = dict(mine.items())
    for item, count in theirs.items():
        combined[item] = combined.get(item, 0) + count
    return combined


def dict_payload(cells) -> list[list[int]]:
    """JSON-safe ``[[item, count], ...]`` snapshot of a tracked dict."""
    return [[item, count] for item, count in cells.items()]


def load_dict_payload(cells, pairs) -> None:
    """Restore a :func:`dict_payload` snapshot (untracked load)."""
    cells.load({int(item): int(count) for item, count in pairs})
