"""Shared helpers for the dict-backed summaries.

``ExactFrequencyCounter``, ``MisraGries``, and ``SpaceSaving`` all keep
an (item → count) :class:`~repro.state.registers.TrackedDict`; the
add-merge over two summaries and the ``[[item, count], ...]`` payload
round-trip are identical across them and live here so the family-
specific merge rules (k-th-largest subtraction, minimum floors) stay
single-site.
"""

from __future__ import annotations


def added_counts(mine, theirs) -> dict[int, int]:
    """Entrywise sum of two (item → count) mappings."""
    combined = dict(mine.items())
    for item, count in theirs.items():
        combined[item] = combined.get(item, 0) + count
    return combined


def dict_payload(cells) -> list[list[int]]:
    """JSON-safe ``[[item, count], ...]`` snapshot of a tracked dict."""
    return [[item, count] for item, count in cells.items()]


def load_dict_payload(cells, pairs) -> None:
    """Restore a :func:`dict_payload` snapshot (untracked load)."""
    cells.load({int(item): int(count) for item, count in pairs})
