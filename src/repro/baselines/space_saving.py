"""SpaceSaving heavy hitters [MAA05] (Table 1, row 3).

Keeps exactly ``k`` (item, count) pairs.  A tracked item increments its
counter; an untracked item *replaces* the minimum-count entry and
inherits its count plus one.  Estimates are overestimates with error at
most ``m/k``.  Like Misra–Gries it writes on every update —
``Theta(m)`` state changes.
"""

from __future__ import annotations

from repro.state.algorithm import StreamAlgorithm
from repro.state.registers import TrackedDict
from repro.state.tracker import StateTracker


class SpaceSaving(StreamAlgorithm):
    """SpaceSaving summary with ``k`` counters."""

    name = "SpaceSaving"

    def __init__(self, k: int, tracker: StateTracker | None = None) -> None:
        if k < 1:
            raise ValueError(f"SpaceSaving needs k >= 1: {k}")
        super().__init__(tracker)
        self.k = k
        self._counters: TrackedDict[int, int] = TrackedDict(self.tracker, "ss")

    def _update(self, item: int) -> None:
        if item in self._counters:
            self._counters[item] = self._counters[item] + 1
        elif len(self._counters) < self.k:
            self._counters[item] = 1
        else:
            victim = min(self._counters, key=self._counters.__getitem__)
            inherited = self._counters[victim]
            del self._counters[victim]
            self._counters[item] = inherited + 1

    def estimate(self, item: int) -> float:
        """Overestimate of ``f_item`` (within ``m/k`` of the truth)."""
        return float(self._counters.get(item, 0))

    def estimates(self) -> dict[int, float]:
        """All currently tracked (item, count) pairs."""
        return {item: float(count) for item, count in self._counters.items()}

    def additive_error_bound(self) -> float:
        """Worst-case overestimation ``m/k`` after ``m`` updates."""
        return self.items_processed / self.k
