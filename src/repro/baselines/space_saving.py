"""SpaceSaving heavy hitters [MAA05] (Table 1, row 3).

Keeps exactly ``k`` (item, count) pairs.  A tracked item increments its
counter; an untracked item *replaces* the minimum-count entry and
inherits its count plus one.  Estimates are overestimates with error at
most ``m/k``.  Like Misra–Gries it writes on every update —
``Theta(m)`` state changes.
"""

from __future__ import annotations

import numpy as np

from repro.baselines._dict_summary import (
    DictSummaryQueries,
    chunk_with_tracked_segments,
    dict_payload,
    load_dict_payload,
)
from repro.baselines._merge_kernels import top_k
from repro.query import (
    AllEstimates,
    HeavyHitters,
    MapAnswer,
    PointQuery,
    QueryKind,
)
from repro.state.algorithm import StreamAlgorithm
from repro.state.registers import TrackedDict
from repro.state.tracker import StateTracker


class SpaceSaving(DictSummaryQueries, StreamAlgorithm):
    """SpaceSaving summary with ``k`` counters.

    Mergeable with the parallel-SpaceSaving rule [CPE16]: over the
    union of tracked items, an item absent from a *full* summary
    contributes that summary's minimum count (it may have been evicted
    holding up to that much mass) and the ``k`` largest combined
    counts survive.  Merged estimates stay overestimates and the
    additive error is bounded by the sum of the shards' bounds.
    """

    name = "SpaceSaving"
    mergeable = True
    supports = frozenset(
        {QueryKind.POINT, QueryKind.ALL_ESTIMATES, QueryKind.HEAVY_HITTERS}
    )

    def __init__(self, k: int, tracker: StateTracker | None = None) -> None:
        if k < 1:
            raise ValueError(f"SpaceSaving needs k >= 1: {k}")
        super().__init__(tracker)
        self.k = k
        self._counters: TrackedDict[int, int] = TrackedDict(self.tracker, "ss")

    def _update(self, item: int) -> None:
        if item in self._counters:
            self._counters[item] = self._counters[item] + 1
        elif len(self._counters) < self.k:
            self._counters[item] = 1
        else:
            victim = min(self._counters, key=self._counters.__getitem__)
            inherited = self._counters[victim]
            del self._counters[victim]
            self._counters[item] = inherited + 1

    def _update_chunk(self, chunk: np.ndarray) -> None:
        # Candidate-filter pre-pass: segments of already-tracked items
        # bulk-increment; untracked items replay scalar.  A structural
        # step either inserts into a free slot (table grows, no key
        # leaves) or replaces the minimum (table size unchanged, the
        # victim's key leaves) — so the segment mask stays valid
        # exactly while the table keeps growing.
        chunk_with_tracked_segments(
            self, chunk, "ss", lambda before, after: after <= before
        )

    # ------------------------------------------------------------------
    # Queries (point/all-estimates hooks come from DictSummaryQueries)
    # ------------------------------------------------------------------
    def _answer_heavy_hitters(self, q: HeavyHitters) -> MapAnswer:
        """Tracked items with ``fhat >= phi * m`` (default ``phi=1/k``).

        Estimates are overestimates (``fhat >= f``), so the raw
        ``phi*m`` threshold already reports every true ``phi``-heavy
        hitter — no false negatives."""
        phi = (1.0 / self.k) if q.phi is None else q.phi
        if not 0 < phi <= 1:
            raise ValueError(f"phi must be in (0, 1]: {phi}")
        threshold = phi * self.items_processed
        return MapAnswer(
            QueryKind.HEAVY_HITTERS,
            {
                item: float(count)
                for item, count in self._counters.items()
                if count >= threshold
            },
        )

    def estimate(self, item: int) -> float:
        """Overestimate of ``f_item`` (within ``m/k`` of the truth)."""
        return self.query(PointQuery(item)).value

    def estimates(self) -> dict[int, float]:
        """All currently tracked (item, count) pairs."""
        return dict(self.query(AllEstimates()).values)

    def heavy_hitters(self, phi: float | None = None) -> dict[int, float]:
        """Tracked items with count at least ``phi * m``."""
        return dict(self.query(HeavyHitters(phi)).values)

    def additive_error_bound(self) -> float:
        """Worst-case overestimation ``m/k`` after ``m`` updates."""
        return self.items_processed / self.k

    # ------------------------------------------------------------------
    # Mergeable sketch protocol
    # ------------------------------------------------------------------
    def _merge_same_type(self, other: "SpaceSaving") -> None:
        if other.k != self.k:
            raise ValueError(
                f"incompatible SpaceSaving summaries: k={self.k} vs "
                f"k={other.k}"
            )
        mine = dict(self._counters.items())
        theirs = dict(other._counters.items())
        # An item missing from a full summary may have been evicted
        # holding up to that summary's minimum count, so it counts as
        # the minimum rather than zero — otherwise a heavy item evicted
        # on one shard loses its mass and the overestimate invariant.
        floor_mine = min(mine.values()) if len(mine) >= self.k else 0
        floor_theirs = min(theirs.values()) if len(theirs) >= self.k else 0
        combined = {
            item: mine.get(item, floor_mine) + theirs.get(item, floor_theirs)
            for item in mine.keys() | theirs.keys()
        }
        if len(combined) > self.k:
            combined = top_k(combined, self.k)
        self._counters.load(combined)

    def _clone_registers(self, tracker: StateTracker) -> None:
        self._counters = self._counters.clone_to(tracker)

    def _config_state(self) -> dict:
        return {"k": self.k}

    def _payload_state(self) -> dict:
        return {"counters": dict_payload(self._counters)}

    def _load_payload(self, payload: dict) -> None:
        load_dict_payload(self._counters, payload["counters"])
