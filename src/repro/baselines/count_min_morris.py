"""CountMin with Morris-counter cells — a sketch/sampling hybrid.

Section 1.4 of the paper observes that classical sketches (CountMin,
CountSketch, ...) "can only achieve a linear number of internal state
changes" because every update touches a cell.  A natural question the
paper leaves open is whether replacing each exact cell with a Morris
counter helps: an update then mutates a cell only when the Morris coin
lands, so *hot* cells quickly stop changing.

The answer this hybrid makes measurable (ablation A4): on skewed
streams the per-update state-change probability decays as the hot
cells' levels grow, so total state changes become sublinear in ``m`` —
but on near-uniform streams every row still hosts cold cells and the
behaviour stays ``Θ(m)``.  The paper's sample-and-hold approach is
sublinear regardless of skew, which is exactly the separation A4
demonstrates.
"""

from __future__ import annotations

import math
import random

from repro.core.counters import MorrisCounter
from repro.hashing.prime_field import KWiseHash
from repro.query import PointQuery, QueryKind, ScalarAnswer
from repro.state.algorithm import StreamAlgorithm
from repro.state.tracker import StateTracker


class CountMinMorris(StreamAlgorithm):
    """CountMin whose cells are Morris counters.

    Point queries remain (probably) overestimates in expectation —
    each cell unbiasedly estimates the hashed-in mass — but inherit the
    Morris multiplicative noise ``~sqrt(a/2)``.
    """

    name = "CountMin-Morris"
    mergeable = True
    supports = frozenset({QueryKind.POINT})

    def __init__(
        self,
        width: int,
        depth: int,
        a: float = 0.125,
        seed: int | None = None,
        tracker: StateTracker | None = None,
    ) -> None:
        if width < 1 or depth < 1:
            raise ValueError(f"need width, depth >= 1: {width}x{depth}")
        super().__init__(tracker)
        self.width = width
        self.depth = depth
        self.a = a
        self.seed = 0 if seed is None else seed
        base = self.seed
        # Held on the instance so the serialization protocol snapshots
        # and resumes the exact coin-flip sequence (see Sketch.to_state).
        rng = self._rng = random.Random(base)
        self._rows = [
            [
                MorrisCounter(
                    self.tracker, a=a, rng=rng, cell_id=f"cmm[{r}][{c}]"
                )
                for c in range(width)
            ]
            for r in range(depth)
        ]
        self._hashes = [KWiseHash(2, seed=base + 1000 * r) for r in range(depth)]
        self.tracker.allocate(sum(h.description_words for h in self._hashes))

    @classmethod
    def for_accuracy(
        cls,
        epsilon: float,
        delta: float = 0.05,
        a: float = 0.125,
        seed: int | None = None,
        tracker: StateTracker | None = None,
    ) -> "CountMinMorris":
        """Same sizing rule as exact CountMin."""
        width = max(1, int(math.ceil(math.e / epsilon)))
        depth = max(1, int(math.ceil(math.log(1.0 / delta))))
        return cls(width, depth, a=a, seed=seed, tracker=tracker)

    def _update(self, item: int) -> None:
        for row, h in zip(self._rows, self._hashes):
            row[h.bucket(item, self.width)].add()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _answer_point(self, q: PointQuery) -> ScalarAnswer:
        """Point query: min over rows of the cell estimates."""
        item = q.item
        return ScalarAnswer(
            QueryKind.POINT,
            min(
                row[h.bucket(item, self.width)].estimate
                for row, h in zip(self._rows, self._hashes)
            ),
        )

    def estimate(self, item: int) -> float:
        """Point query: min over rows of the cell estimates."""
        return self.query(PointQuery(item)).value

    # ------------------------------------------------------------------
    # Mergeable sketch protocol
    # ------------------------------------------------------------------
    # Cells merge pairwise via the unbiased Morris merge (a weighted
    # climb by the other cell's estimate), so the merged sketch stays an
    # unbiased per-cell estimate of the combined hashed-in mass.
    def _merge_same_type(self, other: "CountMinMorris") -> None:
        if (other.width, other.depth, other.a, other.seed) != (
            self.width,
            self.depth,
            self.a,
            self.seed,
        ):
            raise ValueError(
                f"incompatible CountMin-Morris sketches: "
                f"{self.width}x{self.depth}/a={self.a}/seed={self.seed} vs "
                f"{other.width}x{other.depth}/a={other.a}/seed={other.seed}"
            )
        for row, other_row in zip(self._rows, other._rows):
            for cell, other_cell in zip(row, other_row):
                cell.merge_from(other_cell)

    def _config_state(self) -> dict:
        return {
            "width": self.width,
            "depth": self.depth,
            "a": self.a,
            "seed": self.seed,
        }

    def _payload_state(self) -> dict:
        return {"levels": [[cell.level for cell in row] for row in self._rows]}

    def _load_payload(self, payload: dict) -> None:
        for row, levels in zip(self._rows, payload["levels"]):
            for cell, level in zip(row, levels):
                cell.load_level(level)
