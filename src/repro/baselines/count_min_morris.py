"""CountMin with Morris-counter cells — a sketch/sampling hybrid.

Section 1.4 of the paper observes that classical sketches (CountMin,
CountSketch, ...) "can only achieve a linear number of internal state
changes" because every update touches a cell.  A natural question the
paper leaves open is whether replacing each exact cell with a Morris
counter helps: an update then mutates a cell only when the Morris coin
lands, so *hot* cells quickly stop changing.

The answer this hybrid makes measurable (ablation A4): on skewed
streams the per-update state-change probability decays as the hot
cells' levels grow, so total state changes become sublinear in ``m`` —
but on near-uniform streams every row still hosts cold cells and the
behaviour stays ``Θ(m)``.  The paper's sample-and-hold approach is
sublinear regardless of skew, which is exactly the separation A4
demonstrates.

Coin protocols: under ``"v1"`` every cell flips coins from one shared
sequential ``random.Random`` (snapshot-resumable via the RNG state).
Under ``"v2"`` (default) each cell owns an index-addressable
:class:`~repro.hashing.coins.PhiloxCoins` stream labelled by its cell
id and counts arrivals down to a geometric threshold
(:class:`~repro.core.counters.SkipMorrisCounter`), so the chunk kernel
can group a chunk by bucket and absorb each cell's arrivals in
``O(levels climbed)`` — bit-identical to the scalar v2 loop.  Merges
draw from a dedicated ``cmm.merge`` stream with a serialized draw
counter, keeping the executor round trip deterministic.
"""

from __future__ import annotations

import math
import random

import numpy as np

from repro.core.counters import MorrisCounter, SkipMorrisCounter
from repro.hashing.coins import PhiloxCoins
from repro.hashing.prime_field import KWiseHash
from repro.query import MultiPointQuery, PointQuery, QueryKind, ScalarAnswer
from repro.state.algorithm import ChunkAudit, StreamAlgorithm
from repro.state.tracker import StateTracker


class CountMinMorris(StreamAlgorithm):
    """CountMin whose cells are Morris counters.

    Point queries remain (probably) overestimates in expectation —
    each cell unbiasedly estimates the hashed-in mass — but inherit the
    Morris multiplicative noise ``~sqrt(a/2)``.
    """

    name = "CountMin-Morris"
    mergeable = True
    supports = frozenset({QueryKind.POINT})
    _coin_protocol_aware = True

    def __init__(
        self,
        width: int,
        depth: int,
        a: float = 0.125,
        seed: int | None = None,
        coin_protocol: str = "v2",
        tracker: StateTracker | None = None,
    ) -> None:
        if width < 1 or depth < 1:
            raise ValueError(f"need width, depth >= 1: {width}x{depth}")
        if coin_protocol not in ("v1", "v2"):
            raise ValueError(
                f"unknown coin protocol {coin_protocol!r}; "
                f"choose 'v1' or 'v2'"
            )
        super().__init__(tracker)
        self.width = width
        self.depth = depth
        self.a = a
        self.seed = 0 if seed is None else seed
        self.coin_protocol = coin_protocol
        self._chunk_kernel_enabled = coin_protocol == "v2"
        base = self.seed
        if coin_protocol == "v1":
            # Held on the instance so the serialization protocol
            # snapshots and resumes the exact coin-flip sequence (see
            # Sketch.to_state).
            rng = self._rng = random.Random(base)
            self._rows = [
                [
                    MorrisCounter(
                        self.tracker, a=a, rng=rng, cell_id=f"cmm[{r}][{c}]"
                    )
                    for c in range(width)
                ]
                for r in range(depth)
            ]
            self._merge_coins = None
            self._merge_draws = 0
        else:
            self._rows = [
                [
                    SkipMorrisCounter(
                        self.tracker,
                        a=a,
                        coins=PhiloxCoins(base, f"cmm[{r}][{c}]"),
                        cell_id=f"cmm[{r}][{c}]",
                    )
                    for c in range(width)
                ]
                for r in range(depth)
            ]
            self._merge_coins = PhiloxCoins(base, "cmm.merge")
            self._merge_draws = 0
        self._hashes = [KWiseHash(2, seed=base + 1000 * r) for r in range(depth)]
        self.tracker.allocate(sum(h.description_words for h in self._hashes))

    @classmethod
    def for_accuracy(
        cls,
        epsilon: float,
        delta: float = 0.05,
        a: float = 0.125,
        seed: int | None = None,
        coin_protocol: str = "v2",
        tracker: StateTracker | None = None,
    ) -> "CountMinMorris":
        """Same sizing rule as exact CountMin."""
        width = max(1, int(math.ceil(math.e / epsilon)))
        depth = max(1, int(math.ceil(math.log(1.0 / delta))))
        return cls(
            width,
            depth,
            a=a,
            seed=seed,
            coin_protocol=coin_protocol,
            tracker=tracker,
        )

    def _update(self, item: int) -> None:
        for row, h in zip(self._rows, self._hashes):
            row[h.bucket(item, self.width)].add()

    def _update_chunk(self, chunk: np.ndarray) -> None:
        n = len(chunk)
        audit = ChunkAudit(n, self.tracker.needs_cell_ids)
        for row, h in zip(self._rows, self._hashes):
            buckets = h.bucket_many(chunk, self.width)
            # Stable sort: within one bucket, positions stay in stream
            # order, so a cell's j-th absorbed arrival maps back to the
            # exact chunk position the scalar loop would have written on.
            order = np.argsort(buckets, kind="stable")
            uniq, starts = np.unique(buckets[order], return_index=True)
            ends = np.append(starts[1:], n)
            for c, lo, hi in zip(
                uniq.tolist(), starts.tolist(), ends.tolist()
            ):
                cell = row[c]
                transitions = cell.absorb(hi - lo)
                if transitions:
                    count = len(transitions)
                    audit.writes += count
                    audit.attempts += count
                    audit.dirty[
                        order[lo + np.asarray(transitions) - 1]
                    ] = True
                    if audit.cells is not None:
                        audit.cells[cell.cell_id] = (
                            audit.cells.get(cell.cell_id, 0) + count
                        )
        audit.commit(self.tracker, n)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _answer_point(self, q: PointQuery) -> ScalarAnswer:
        """Point query: min over rows of the cell estimates."""
        item = q.item
        return ScalarAnswer(
            QueryKind.POINT,
            min(
                row[h.bucket(item, self.width)].estimate
                for row, h in zip(self._rows, self._hashes)
            ),
        )

    def _answer_point_many(
        self, q: MultiPointQuery
    ) -> tuple[ScalarAnswer, ...]:
        """Batch point queries: one chunked hash per row, each touched
        cell's Morris estimate computed once and gathered.

        The per-cell ``estimate`` is a pure function of the counter
        level, so memoizing it per batch reproduces the scalar min
        over rows exactly.
        """
        if not q.items:
            return ()
        items = np.asarray(q.items, dtype=np.int64)
        best: np.ndarray | None = None
        for row, h in zip(self._rows, self._hashes):
            buckets = h.bucket_many(items, self.width)
            estimates = {
                c: row[c].estimate for c in np.unique(buckets).tolist()
            }
            values = np.array(
                [estimates[c] for c in buckets.tolist()], dtype=np.float64
            )
            best = values if best is None else np.minimum(best, values)
        return tuple(
            ScalarAnswer(QueryKind.POINT, value)
            for value in best.tolist()
        )

    def estimate(self, item: int) -> float:
        """Point query: min over rows of the cell estimates."""
        return self.query(PointQuery(item)).value

    # ------------------------------------------------------------------
    # Mergeable sketch protocol
    # ------------------------------------------------------------------
    # Cells merge pairwise via the unbiased Morris merge (a weighted
    # climb by the other cell's estimate), so the merged sketch stays an
    # unbiased per-cell estimate of the combined hashed-in mass.
    def _merge_same_type(self, other: "CountMinMorris") -> None:
        if (
            other.width,
            other.depth,
            other.a,
            other.seed,
            other.coin_protocol,
        ) != (
            self.width,
            self.depth,
            self.a,
            self.seed,
            self.coin_protocol,
        ):
            raise ValueError(
                f"incompatible CountMin-Morris sketches: "
                f"{self.width}x{self.depth}/a={self.a}/seed={self.seed}"
                f"/{self.coin_protocol} vs "
                f"{other.width}x{other.depth}/a={other.a}"
                f"/seed={other.seed}/{other.coin_protocol}"
            )
        if self.coin_protocol == "v1":
            for row, other_row in zip(self._rows, other._rows):
                for cell, other_cell in zip(row, other_row):
                    cell.merge_from(other_cell)
            return
        for row, other_row in zip(self._rows, other._rows):
            for cell, other_cell in zip(row, other_row):
                weight = other_cell.estimate
                if weight > 0:
                    u = self._merge_coins.uniform(self._merge_draws)
                    self._merge_draws += 1
                    cell.merge_weight(weight, u)

    def _config_state(self) -> dict:
        return {
            "width": self.width,
            "depth": self.depth,
            "a": self.a,
            "seed": self.seed,
            "coin_protocol": self.coin_protocol,
        }

    def _payload_state(self) -> dict:
        payload = {
            "levels": [[cell.level for cell in row] for row in self._rows]
        }
        if self.coin_protocol == "v2":
            payload["since"] = [
                [cell.since for cell in row] for row in self._rows
            ]
            payload["merge_draws"] = self._merge_draws
        return payload

    def _load_payload(self, payload: dict) -> None:
        if self.coin_protocol == "v2":
            for row, levels, since in zip(
                self._rows, payload["levels"], payload["since"]
            ):
                for cell, level, n_since in zip(row, levels, since):
                    cell.restore(level, n_since)
            self._merge_draws = int(payload.get("merge_draws", 0))
            return
        for row, levels in zip(self._rows, payload["levels"]):
            for cell, level in zip(row, levels):
                cell.load_level(level)
