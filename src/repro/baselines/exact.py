"""Exact dictionary counter — the zero-error, maximum-write baseline.

Stores the full frequency vector.  Every update mutates a counter, so
the number of state changes equals the stream length ``m`` exactly,
anchoring the ``O(m)`` end of Table 1.
"""

from __future__ import annotations

from repro.baselines._dict_summary import (
    added_counts,
    dict_payload,
    load_dict_payload,
)
from repro.state.algorithm import StreamAlgorithm
from repro.state.registers import TrackedDict
from repro.state.tracker import StateTracker


class ExactFrequencyCounter(StreamAlgorithm):
    """Exact frequencies via a tracked hash table (space ``O(F0)``).

    Trivially mergeable: frequency vectors add.
    """

    name = "Exact"
    mergeable = True

    def __init__(self, tracker: StateTracker | None = None) -> None:
        super().__init__(tracker)
        self._counts: TrackedDict[int, int] = TrackedDict(self.tracker, "exact")

    def _update(self, item: int) -> None:
        self._counts[item] = self._counts.get(item, 0) + 1

    def estimate(self, item: int) -> float:
        """Exact frequency of ``item``."""
        return float(self._counts.get(item, 0))

    def estimates(self) -> dict[int, float]:
        """All stored frequencies (exact)."""
        return {item: float(count) for item, count in self._counts.items()}

    # ------------------------------------------------------------------
    # Mergeable sketch protocol
    # ------------------------------------------------------------------
    def _merge_same_type(self, other: "ExactFrequencyCounter") -> None:
        self._counts.load(added_counts(self._counts, other._counts))

    def _config_state(self) -> dict:
        return {}

    def _payload_state(self) -> dict:
        return {"counts": dict_payload(self._counts)}

    def _load_payload(self, payload: dict) -> None:
        load_dict_payload(self._counts, payload["counts"])
