"""Exact dictionary counter — the zero-error, maximum-write baseline.

Stores the full frequency vector.  Every update mutates a counter, so
the number of state changes equals the stream length ``m`` exactly,
anchoring the ``O(m)`` end of Table 1.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines._dict_summary import (
    DictSummaryQueries,
    dict_payload,
    load_dict_payload,
)
from repro.baselines._merge_kernels import fold_counts
from repro.query import (
    AllEstimates,
    Distinct,
    Entropy,
    Moment,
    MomentAnswer,
    PointQuery,
    QueryKind,
    ScalarAnswer,
)
from repro.state.algorithm import StreamAlgorithm
from repro.state.registers import TrackedDict
from repro.state.tracker import StateTracker


class ExactFrequencyCounter(DictSummaryQueries, StreamAlgorithm):
    """Exact frequencies via a tracked hash table (space ``O(F0)``).

    Trivially mergeable: frequency vectors add.
    """

    name = "Exact"
    mergeable = True
    # Holding the full frequency vector, it answers every query kind
    # exactly — the reference implementation of the query protocol.
    supports = frozenset(
        {
            QueryKind.POINT,
            QueryKind.ALL_ESTIMATES,
            QueryKind.MOMENT,
            QueryKind.DISTINCT,
            QueryKind.ENTROPY,
        }
    )

    def __init__(self, tracker: StateTracker | None = None) -> None:
        super().__init__(tracker)
        self._counters: TrackedDict[int, int] = TrackedDict(self.tracker, "exact")

    def _update(self, item: int) -> None:
        self._counters[item] = self._counters.get(item, 0) + 1

    def _update_chunk(self, chunk: np.ndarray) -> None:
        # Fully vectorized: exact counting has no structural decisions,
        # so the whole chunk folds through one np.unique.  Every update
        # mutates its item's counter (increment or insert): per update
        # one write attempt, one mutating write, X_t = 1; inserts
        # allocate one word each, and with no frees inside the chunk
        # the peak matches the scalar interleaving exactly.
        tracker = self.tracker
        counters = self._counters
        uniq, first_seen, counts = np.unique(
            chunk, return_index=True, return_counts=True
        )
        # Insert new keys in first-occurrence order (np.unique sorts),
        # so the payload dict — and its serialized form — is
        # bit-identical to the scalar ingest's insertion order.
        order = np.argsort(first_seen, kind="stable")
        uniq, counts = uniq[order], counts[order]
        get = counters.get
        merged: dict[int, int] = {}
        cells = {} if tracker.needs_cell_ids else None
        inserts = 0
        for item, count in zip(uniq.tolist(), counts.tolist()):
            previous = get(item)
            if previous is None:
                merged[item] = count
                inserts += 1
            else:
                merged[item] = previous + count
            if cells is not None:
                cells[f"exact[{item}]"] = count
        if inserts:
            tracker.allocate(inserts)
        # Only the touched entries are written — the table is never
        # copied, so distinct-heavy streams stay O(m) like the scalar
        # loop instead of O(distinct * chunks).
        counters.load_update(merged)
        updates = len(chunk)
        tracker.record_chunk(updates, updates, updates, updates, cells)

    # ------------------------------------------------------------------
    # Queries (point/all-estimates hooks come from DictSummaryQueries)
    # ------------------------------------------------------------------
    def _answer_moment(self, q: Moment) -> MomentAnswer:
        """Exact ``Fp`` for any order (``p=None`` defaults to 2)."""
        p = 2.0 if q.p is None else q.p
        if p == 0.0:
            value = float(len(self._counters))
        else:
            value = float(sum(count**p for count in self._counters.values()))
        return MomentAnswer(QueryKind.MOMENT, value, p=p)

    def _answer_distinct(self, q: Distinct) -> ScalarAnswer:
        return ScalarAnswer(QueryKind.DISTINCT, float(len(self._counters)))

    def _answer_entropy(self, q: Entropy) -> ScalarAnswer:
        """Exact Shannon entropy (bits) of the empirical distribution."""
        total = self._items_processed
        if total == 0:
            return ScalarAnswer(QueryKind.ENTROPY, 0.0)
        entropy = -sum(
            (count / total) * math.log2(count / total)
            for count in self._counters.values()
            if count > 0
        )
        return ScalarAnswer(QueryKind.ENTROPY, entropy)

    def estimate(self, item: int) -> float:
        """Exact frequency of ``item``."""
        return self.query(PointQuery(item)).value

    def estimates(self) -> dict[int, float]:
        """All stored frequencies (exact)."""
        return dict(self.query(AllEstimates()).values)

    # ------------------------------------------------------------------
    # Mergeable sketch protocol
    # ------------------------------------------------------------------
    def _merge_same_type(self, other: "ExactFrequencyCounter") -> None:
        self._counters.load(fold_counts(self._counters, other._counters))

    def _clone_registers(self, tracker: StateTracker) -> None:
        self._counters = self._counters.clone_to(tracker)

    def _config_state(self) -> dict:
        return {}

    def _payload_state(self) -> dict:
        return {"counts": dict_payload(self._counters)}

    def _load_payload(self, payload: dict) -> None:
        load_dict_payload(self._counters, payload["counts"])
