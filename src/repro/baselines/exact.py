"""Exact dictionary counter — the zero-error, maximum-write baseline.

Stores the full frequency vector.  Every update mutates a counter, so
the number of state changes equals the stream length ``m`` exactly,
anchoring the ``O(m)`` end of Table 1.
"""

from __future__ import annotations

from repro.state.algorithm import StreamAlgorithm
from repro.state.registers import TrackedDict
from repro.state.tracker import StateTracker


class ExactFrequencyCounter(StreamAlgorithm):
    """Exact frequencies via a tracked hash table (space ``O(F0)``)."""

    name = "Exact"

    def __init__(self, tracker: StateTracker | None = None) -> None:
        super().__init__(tracker)
        self._counts: TrackedDict[int, int] = TrackedDict(self.tracker, "exact")

    def _update(self, item: int) -> None:
        self._counts[item] = self._counts.get(item, 0) + 1

    def estimate(self, item: int) -> float:
        """Exact frequency of ``item``."""
        return float(self._counts.get(item, 0))

    def estimates(self) -> dict[int, float]:
        """All stored frequencies (exact)."""
        return {item: float(count) for item, count in self._counts.items()}
