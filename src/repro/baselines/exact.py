"""Exact dictionary counter — the zero-error, maximum-write baseline.

Stores the full frequency vector.  Every update mutates a counter, so
the number of state changes equals the stream length ``m`` exactly,
anchoring the ``O(m)`` end of Table 1.
"""

from __future__ import annotations

import math

from repro.baselines._dict_summary import (
    DictSummaryQueries,
    added_counts,
    dict_payload,
    load_dict_payload,
)
from repro.query import (
    AllEstimates,
    Distinct,
    Entropy,
    Moment,
    MomentAnswer,
    PointQuery,
    QueryKind,
    ScalarAnswer,
)
from repro.state.algorithm import StreamAlgorithm
from repro.state.registers import TrackedDict
from repro.state.tracker import StateTracker


class ExactFrequencyCounter(DictSummaryQueries, StreamAlgorithm):
    """Exact frequencies via a tracked hash table (space ``O(F0)``).

    Trivially mergeable: frequency vectors add.
    """

    name = "Exact"
    mergeable = True
    # Holding the full frequency vector, it answers every query kind
    # exactly — the reference implementation of the query protocol.
    supports = frozenset(
        {
            QueryKind.POINT,
            QueryKind.ALL_ESTIMATES,
            QueryKind.MOMENT,
            QueryKind.DISTINCT,
            QueryKind.ENTROPY,
        }
    )

    def __init__(self, tracker: StateTracker | None = None) -> None:
        super().__init__(tracker)
        self._counters: TrackedDict[int, int] = TrackedDict(self.tracker, "exact")

    def _update(self, item: int) -> None:
        self._counters[item] = self._counters.get(item, 0) + 1

    # ------------------------------------------------------------------
    # Queries (point/all-estimates hooks come from DictSummaryQueries)
    # ------------------------------------------------------------------
    def _answer_moment(self, q: Moment) -> MomentAnswer:
        """Exact ``Fp`` for any order (``p=None`` defaults to 2)."""
        p = 2.0 if q.p is None else q.p
        if p == 0.0:
            value = float(len(self._counters))
        else:
            value = float(sum(count**p for count in self._counters.values()))
        return MomentAnswer(QueryKind.MOMENT, value, p=p)

    def _answer_distinct(self, q: Distinct) -> ScalarAnswer:
        return ScalarAnswer(QueryKind.DISTINCT, float(len(self._counters)))

    def _answer_entropy(self, q: Entropy) -> ScalarAnswer:
        """Exact Shannon entropy (bits) of the empirical distribution."""
        total = self._items_processed
        if total == 0:
            return ScalarAnswer(QueryKind.ENTROPY, 0.0)
        entropy = -sum(
            (count / total) * math.log2(count / total)
            for count in self._counters.values()
            if count > 0
        )
        return ScalarAnswer(QueryKind.ENTROPY, entropy)

    def estimate(self, item: int) -> float:
        """Exact frequency of ``item``."""
        return self.query(PointQuery(item)).value

    def estimates(self) -> dict[int, float]:
        """All stored frequencies (exact)."""
        return dict(self.query(AllEstimates()).values)

    # ------------------------------------------------------------------
    # Mergeable sketch protocol
    # ------------------------------------------------------------------
    def _merge_same_type(self, other: "ExactFrequencyCounter") -> None:
        self._counters.load(added_counts(self._counters, other._counters))

    def _config_state(self) -> dict:
        return {}

    def _payload_state(self) -> dict:
        return {"counts": dict_payload(self._counters)}

    def _load_payload(self, payload: dict) -> None:
        load_dict_payload(self._counters, payload["counts"])
