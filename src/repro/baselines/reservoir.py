"""Classic reservoir sampling (Vitter's Algorithm R).

A uniform sample of ``k`` stream positions.  The expected number of
reservoir replacements after ``m`` updates is ``k * (H_m - H_k) =
O(k log m)`` — sampling is the canonical *few-state-changes* primitive
the paper builds on (Section 1.1, "Relationship with sampling").
"""

from __future__ import annotations

import random

from repro.state.algorithm import StreamAlgorithm
from repro.state.registers import TrackedArray, TrackedValue
from repro.state.tracker import StateTracker


class ReservoirSampler(StreamAlgorithm):
    """Uniform ``k``-sample of the stream with tracked slots."""

    name = "Reservoir"

    def __init__(
        self,
        k: int,
        rng: random.Random | None = None,
        seed: int | None = None,
        tracker: StateTracker | None = None,
    ) -> None:
        if k < 1:
            raise ValueError(f"reservoir size must be >= 1: {k}")
        super().__init__(tracker)
        self.k = k
        self._rng = rng if rng is not None else random.Random(seed)
        self._slots: TrackedArray[int | None] = TrackedArray(
            self.tracker, "reservoir", k, fill=None
        )
        self._seen = TrackedValue(self.tracker, "reservoir.seen", 0)

    def _update(self, item: int) -> None:
        seen = self._seen.value
        if seen < self.k:
            self._slots[seen] = item
        else:
            j = self._rng.randrange(seen + 1)
            if j < self.k:
                self._slots[j] = item
        # The counter write makes Algorithm R Theta(m) state changes as
        # written; a Morris counter would remove this (see core/).
        self._seen.set(seen + 1)

    @property
    def sample(self) -> list[int]:
        """Current reservoir contents (only filled slots)."""
        return [slot for slot in self._slots if slot is not None]
