"""Classic reservoir sampling (Vitter's Algorithm R).

A uniform sample of ``k`` stream positions.  The expected number of
reservoir replacements after ``m`` updates is ``k * (H_m - H_k) =
O(k log m)`` — sampling is the canonical *few-state-changes* primitive
the paper builds on (Section 1.1, "Relationship with sampling").

Two coin protocols drive the admission draw:

* ``"v1"`` — the sequential ``random.Random`` path
  (``randrange(seen+1)`` per update past the fill), forced whenever a
  caller passes an explicit ``rng``.
* ``"v2"`` (default) — index-addressable
  :class:`~repro.hashing.coins.PhiloxCoins`: the arrival with
  seen-count ``s >= k`` consumes the coin at index ``s`` and lands on
  slot ``floor(u * (s+1))``.  Because every coin is a pure function of
  its index, the chunk kernel fetches the whole block of coins a chunk
  would consume in one call and replays only the ``j < k`` acceptances
  scalar-style — bit-identical to the scalar v2 loop.
"""

from __future__ import annotations

import random

import numpy as np

from repro.hashing.coins import PhiloxCoins
from repro.state.algorithm import ChunkAudit, StreamAlgorithm
from repro.state.registers import TrackedArray, TrackedValue
from repro.state.tracker import StateTracker


class ReservoirSampler(StreamAlgorithm):
    """Uniform ``k``-sample of the stream with tracked slots."""

    name = "Reservoir"
    _coin_protocol_aware = True

    def __init__(
        self,
        k: int,
        rng: random.Random | None = None,
        seed: int | None = None,
        coin_protocol: str | None = None,
        tracker: StateTracker | None = None,
    ) -> None:
        if k < 1:
            raise ValueError(f"reservoir size must be >= 1: {k}")
        super().__init__(tracker)
        self.k = k
        if coin_protocol is None:
            # An explicit rng is inherently sequential: it implies v1.
            coin_protocol = "v1" if rng is not None else "v2"
        if coin_protocol not in ("v1", "v2"):
            raise ValueError(
                f"unknown coin protocol {coin_protocol!r}; "
                f"choose 'v1' or 'v2'"
            )
        if coin_protocol == "v2" and rng is not None:
            raise ValueError(
                "coin_protocol='v2' draws from indexed Philox streams; "
                "an explicit rng= requires coin_protocol='v1'"
            )
        self.coin_protocol = coin_protocol
        self.seed = seed
        if coin_protocol == "v1":
            self._rng = rng if rng is not None else random.Random(seed)
            self._coins = None
        else:
            self._coins = PhiloxCoins(seed, "reservoir")
        self._chunk_kernel_enabled = coin_protocol == "v2"
        self._slots: TrackedArray[int | None] = TrackedArray(
            self.tracker, "reservoir", k, fill=None
        )
        self._seen = TrackedValue(self.tracker, "reservoir.seen", 0)

    def _slot_for(self, seen: int) -> int:
        """v2 admission: the coin at index ``seen`` picks a slot in
        ``[0, seen]``; ``j >= k`` means rejection."""
        u = self._coins.uniform(seen)
        return min(int(u * (seen + 1)), seen)

    def _update(self, item: int) -> None:
        seen = self._seen.value
        if seen < self.k:
            self._slots[seen] = item
        else:
            if self._coins is None:
                j = self._rng.randrange(seen + 1)
            else:
                j = self._slot_for(seen)
            if j < self.k:
                self._slots[j] = item
        # The counter write makes Algorithm R Theta(m) state changes as
        # written; a Morris counter would remove this (see core/).
        self._seen.set(seen + 1)

    def _update_chunk(self, chunk: np.ndarray) -> None:
        n = len(chunk)
        seen0 = self._seen.value
        audit = ChunkAudit(n, self.tracker.needs_cell_ids)
        slots = self._slots
        # Fill phase: arrivals with seen < k land on slot ``seen``.
        fill = min(n, max(0, self.k - seen0))
        for i in range(fill):
            item = int(chunk[i])
            audit.write(f"reservoir[{seen0 + i}]", True, i)
            slots.store_at(seen0 + i, item)
        # Sampled phase: coin index == seen value, fetched as a block.
        if fill < n:
            start = seen0 + fill
            u = self._coins.uniform_block(start, n - fill)
            counts = np.arange(start + 1, seen0 + n + 1, dtype=np.float64)
            j = np.minimum(
                (u * counts).astype(np.int64), np.arange(start, seen0 + n)
            )
            accepted = np.nonzero(j < self.k)[0]
            for offset in accepted.tolist():
                pos = fill + offset
                slot = int(j[offset])
                item = int(chunk[pos])
                audit.write(
                    f"reservoir[{slot}]", slots[slot] != item, pos
                )
                slots.store_at(slot, item)
        # The seen counter mutates on every update.
        audit.attempts += n
        audit.writes += n
        audit.dirty[:] = True
        if audit.cells is not None:
            audit.cells["reservoir.seen"] = (
                audit.cells.get("reservoir.seen", 0) + n
            )
        self._seen.load(seen0 + n)
        audit.commit(self.tracker, n)

    @property
    def sample(self) -> list[int]:
        """Current reservoir contents (only filled slots)."""
        return [slot for slot in self._slots if slot is not None]
