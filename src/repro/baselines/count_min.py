"""CountMin sketch [CM05] (Table 1, row 2).

``depth`` pairwise-independent hash rows of ``width`` counters; a point
query returns the minimum over rows, an overestimate with additive
error ``<= e*m/width`` w.p. ``1 - e^{-depth}``.  Every update increments
``depth`` cells, so the sketch makes one state change per update —
``Theta(m)`` total, the classical behaviour the paper improves on.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.baselines._merge_kernels import add_cells
from repro.hashing.prime_field import KWiseHash
from repro.query import MultiPointQuery, PointQuery, QueryKind, ScalarAnswer
from repro.state.algorithm import StreamAlgorithm
from repro.state.registers import TrackedArray
from repro.state.tracker import StateTracker


class CountMin(StreamAlgorithm):
    """CountMin sketch with ``depth x width`` tracked counters.

    CountMin is a linear sketch, so two instances built with the same
    ``(width, depth, seed)`` merge by cell-wise addition and the merged
    sketch is *identical* to one that saw both streams.
    """

    name = "CountMin"
    mergeable = True
    supports = frozenset({QueryKind.POINT})

    def __init__(
        self,
        width: int,
        depth: int,
        seed: int | None = None,
        tracker: StateTracker | None = None,
    ) -> None:
        if width < 1 or depth < 1:
            raise ValueError(f"need width, depth >= 1: {width}x{depth}")
        super().__init__(tracker)
        self.width = width
        self.depth = depth
        self.seed = 0 if seed is None else seed
        self._rows = [
            TrackedArray(self.tracker, f"cm[{r}]", width, fill=0)
            for r in range(depth)
        ]
        self._hashes = [
            KWiseHash(2, seed=self.seed + 1000 * r) for r in range(depth)
        ]
        # Hash descriptions occupy memory too.
        self.tracker.allocate(sum(h.description_words for h in self._hashes))

    @classmethod
    def for_accuracy(
        cls,
        epsilon: float,
        delta: float = 0.05,
        seed: int | None = None,
        tracker: StateTracker | None = None,
    ) -> "CountMin":
        """Sketch with additive error ``eps*m`` w.p. ``1 - delta``."""
        width = max(1, int(math.ceil(math.e / epsilon)))
        depth = max(1, int(math.ceil(math.log(1.0 / delta))))
        return cls(width, depth, seed=seed, tracker=tracker)

    def _update(self, item: int) -> None:
        for row, h in zip(self._rows, self._hashes):
            bucket = h.bucket(item, self.width)
            row[bucket] = row[bucket] + 1

    def _update_chunk(self, chunk: np.ndarray) -> None:
        # Vectorized kernel: one row hash + bincount per row, cells
        # merged through the untracked load path.  Every update
        # increments depth cells (increments are never silent), so the
        # bulk audit is exact: k updates = k state changes and
        # k * depth mutating writes.
        k = len(chunk)
        tracker = self.tracker
        cells = {} if tracker.needs_cell_ids else None
        for r, (row, h) in enumerate(zip(self._rows, self._hashes)):
            counts = np.bincount(h.bucket_many(chunk, self.width))
            touched = np.flatnonzero(counts)
            deltas = counts[touched].tolist()
            touched = touched.tolist()
            row.add_at(touched, deltas)
            if cells is not None:
                for bucket, count in zip(touched, deltas):
                    cells[f"cm[{r}][{bucket}]"] = count
        writes = k * self.depth
        tracker.record_chunk(k, k, writes, writes, cells)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _answer_point(self, q: PointQuery) -> ScalarAnswer:
        """Point query: min over rows (an overestimate)."""
        item = q.item
        return ScalarAnswer(
            QueryKind.POINT,
            float(
                min(
                    row[h.bucket(item, self.width)]
                    for row, h in zip(self._rows, self._hashes)
                )
            ),
        )

    def _answer_point_many(
        self, q: MultiPointQuery
    ) -> tuple[ScalarAnswer, ...]:
        """Batch point queries: one chunked hash per row, gathered.

        Evaluates each row's polynomial once for the whole batch
        (:meth:`~repro.hashing.prime_field.KWiseHash.bucket_many` is
        bit-identical to the scalar hash), gathers the cells, and
        reduces with ``np.minimum`` — the same integer minima the
        scalar loop takes, converted to float once at the end.
        """
        if not q.items:
            return ()
        if self.width > 64 * len(q.items):
            # Tiny batch against a wide row: materializing the row
            # costs more than the scalar hashes it saves.
            return super()._answer_point_many(q)
        items = np.asarray(q.items, dtype=np.int64)
        best: np.ndarray | None = None
        for row, h in zip(self._rows, self._hashes):
            cells = np.fromiter(row, dtype=np.int64, count=self.width)
            values = cells[h.bucket_many(items, self.width)]
            best = values if best is None else np.minimum(best, values)
        return tuple(
            ScalarAnswer(QueryKind.POINT, float(value))
            for value in best.tolist()
        )

    def estimate(self, item: int) -> float:
        """Point query: min over rows (an overestimate)."""
        return self.query(PointQuery(item)).value

    def estimates(self, items: Iterable[int]) -> dict[int, float]:
        """Point queries for a candidate set (CountMin has no item list,
        so unlike the summary families the candidates are required)."""
        return {item: self.estimate(item) for item in items}

    # ------------------------------------------------------------------
    # Mergeable sketch protocol
    # ------------------------------------------------------------------
    def _merge_same_type(self, other: "CountMin") -> None:
        if (other.width, other.depth, other.seed) != (
            self.width,
            self.depth,
            self.seed,
        ):
            raise ValueError(
                f"incompatible CountMin sketches: "
                f"{self.width}x{self.depth}/seed={self.seed} vs "
                f"{other.width}x{other.depth}/seed={other.seed}"
            )
        for row, other_row in zip(self._rows, other._rows):
            row.load(add_cells(row, other_row))

    def _clone_registers(self, tracker: StateTracker) -> None:
        # Rows carry the only mutable state; hash descriptions are
        # immutable and stay shared with the original.
        self._rows = [row.clone_to(tracker) for row in self._rows]

    def _config_state(self) -> dict:
        return {"width": self.width, "depth": self.depth, "seed": self.seed}

    def _payload_state(self) -> dict:
        return {"rows": [list(row) for row in self._rows]}

    def _load_payload(self, payload: dict) -> None:
        for row, values in zip(self._rows, payload["rows"]):
            row.load([int(v) for v in values])
