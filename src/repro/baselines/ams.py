"""AMS F2 sketch [AMS99] — the classical moment-estimation baseline.

``copies`` independent 4-wise sign hashes maintain ``Z_c = sum_i
sign_c(i) * f_i``; ``Z_c^2`` is an unbiased estimate of ``F2`` with
``Var <= 2*F2^2``, so a median of means over groups achieves
``(1 +/- eps)`` accuracy.  Every update mutates every ``Z_c``:
``Theta(m)`` state changes, the behaviour Theorem 1.3 improves on.
"""

from __future__ import annotations

import math
import statistics

import numpy as np

from repro.baselines._merge_kernels import add_cells
from repro.hashing.prime_field import KWiseHash
from repro.query import Moment, MomentAnswer, QueryKind
from repro.state.algorithm import StreamAlgorithm
from repro.state.registers import TrackedArray
from repro.state.tracker import StateTracker


class AMSSketch(StreamAlgorithm):
    """AMS ``F2`` estimator with median-of-means boosting.

    A linear sketch: instances sharing ``(num_groups, group_size,
    seed)`` merge by adding the sign-sums ``Z_c`` coordinate-wise.
    """

    name = "AMS"
    mergeable = True
    supports = frozenset({QueryKind.MOMENT})

    def __init__(
        self,
        num_groups: int,
        group_size: int,
        seed: int | None = None,
        tracker: StateTracker | None = None,
    ) -> None:
        if num_groups < 1 or group_size < 1:
            raise ValueError(
                f"need num_groups, group_size >= 1: {num_groups}x{group_size}"
            )
        super().__init__(tracker)
        self.num_groups = num_groups
        self.group_size = group_size
        self.seed = 0 if seed is None else seed
        total = num_groups * group_size
        self._sums = TrackedArray(self.tracker, "ams", total, fill=0)
        self._signs = [
            KWiseHash(4, seed=self.seed + 37 * c) for c in range(total)
        ]
        self.tracker.allocate(sum(h.description_words for h in self._signs))

    @classmethod
    def for_accuracy(
        cls,
        epsilon: float,
        delta: float = 0.05,
        seed: int | None = None,
        tracker: StateTracker | None = None,
    ) -> "AMSSketch":
        """Median of means sized for ``(1 +/- eps)`` w.p. ``1 - delta``."""
        group_size = max(1, int(math.ceil(16.0 / epsilon**2)))
        num_groups = max(1, int(math.ceil(4.0 * math.log(1.0 / delta))))
        return cls(num_groups, group_size, seed=seed, tracker=tracker)

    def _update(self, item: int) -> None:
        for c, sign_hash in enumerate(self._signs):
            self._sums[c] = self._sums[c] + sign_hash.sign(item)

    def _update_chunk(self, chunk: np.ndarray) -> None:
        # Vectorized kernel: each counter's delta is the sum of its ±1
        # signs over the chunk.  Every update writes every counter (a
        # ±1 add is never silent), so the chunk costs
        # k * num_counters mutating writes and k state changes.
        k = len(chunk)
        tracker = self.tracker
        deltas = [int(h.sign_many(chunk).sum()) for h in self._signs]
        self._sums.load([z + d for z, d in zip(self._sums, deltas)])
        cells = None
        if tracker.needs_cell_ids:
            cells = {f"ams[{c}]": k for c in range(len(self._signs))}
        writes = k * len(self._signs)
        tracker.record_chunk(k, k, writes, writes, cells)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _answer_moment(self, q: Moment) -> MomentAnswer:
        """Median over groups of the mean of ``Z_c^2`` within the group."""
        if q.p is not None and q.p != 2.0:
            raise ValueError(f"AMS answers only p=2 moments: {q.p}")
        group_means = []
        for g in range(self.num_groups):
            start = g * self.group_size
            values = [
                self._sums[c] ** 2 for c in range(start, start + self.group_size)
            ]
            group_means.append(sum(values) / len(values))
        return MomentAnswer(
            QueryKind.MOMENT, float(statistics.median(group_means)), p=2.0
        )

    def f2_estimate(self) -> float:
        """Median over groups of the mean of ``Z_c^2`` within the group."""
        return self.query(Moment(2.0)).value

    # ------------------------------------------------------------------
    # Mergeable sketch protocol
    # ------------------------------------------------------------------
    def _merge_same_type(self, other: "AMSSketch") -> None:
        if (other.num_groups, other.group_size, other.seed) != (
            self.num_groups,
            self.group_size,
            self.seed,
        ):
            raise ValueError(
                f"incompatible AMS sketches: "
                f"{self.num_groups}x{self.group_size}/seed={self.seed} vs "
                f"{other.num_groups}x{other.group_size}/seed={other.seed}"
            )
        self._sums.load(add_cells(self._sums, other._sums))

    def _clone_registers(self, tracker: StateTracker) -> None:
        # The sign-sum array is the only mutable state; the sign hash
        # descriptions are immutable and stay shared.
        self._sums = self._sums.clone_to(tracker)

    def _config_state(self) -> dict:
        return {
            "num_groups": self.num_groups,
            "group_size": self.group_size,
            "seed": self.seed,
        }

    def _payload_state(self) -> dict:
        return {"sums": list(self._sums)}

    def _load_payload(self, payload: dict) -> None:
        self._sums.load([int(v) for v in payload["sums"]])
